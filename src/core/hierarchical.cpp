#include "core/hierarchical.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cache/fingerprint.hpp"
#include "model/trace_stats.hpp"

namespace hyperrec {

namespace {

constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;

/// Σ_j max-demand_j([lo, hi)) ≤ g — same block-feasibility rule as the
/// evaluator's quota check, O(1) per task from the precomputed stats.
bool block_feasible(const SolveInstance& instance, std::size_t lo,
                    std::size_t hi) {
  const std::uint32_t pool = instance.machine().private_global_units;
  if (pool == 0) return true;
  std::uint64_t quota_sum = 0;
  for (std::size_t j = 0; j < instance.task_count(); ++j) {
    quota_sum += instance.task_stats(j).max_private_demand(lo, hi);
  }
  return quota_sum <= pool;
}

/// A segment solution must treat its window as one global block: extra
/// global boundaries would be dropped by the stitch (same invariant as
/// solve_private_global's inner solvers).
void check_segment_shape(const MTSolution& solution,
                         const MachineSpec& machine) {
  static const std::vector<std::size_t> kSingleBlock{0};
  if (machine.has_global_resources()) {
    HYPERREC_ENSURE(solution.schedule.global_boundaries == kSingleBlock,
                    "segment solver split its window with extra global "
                    "hyperreconfigurations; the boundary DP owns the block "
                    "structure");
  }
}

}  // namespace

HierarchicalResult solve_hierarchical(const SolveInstance& instance,
                                      const HierarchicalConfig& config) {
  HYPERREC_ENSURE(instance.synchronized(),
                  "hierarchical solver needs equal-length traces");
  HYPERREC_ENSURE(!instance.options().changeover,
                  "hierarchical solver does not support changeover costs: "
                  "interval costs would couple across segment seams");
  HYPERREC_ENSURE(config.segment >= 1, "segment length must be at least 1");

  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  const EvalOptions& options = instance.options();
  const std::size_t n = instance.steps();
  const std::size_t m = instance.task_count();

  engine::PortfolioConfig member = config.portfolio;
  member.parallel = false;  // segments, not members, are the parallel unit
  member.pool = nullptr;

  HierarchicalResult result;

  // Flat fallback: one window covers the whole trace.
  if (n <= config.segment || m == 0) {
    result.segments = 1;
    if (config.cache) {
      cache::CacheOutcome outcome = cache::CacheOutcome::kMiss;
      result.solution = config.cache->get_or_compute_guarded(
          cache::make_instance_key(instance),
          [&] {
            return cache::ComputeResult{
                engine::solve_portfolio(instance, member, config.cancel).best,
                true};
          },
          &outcome);
      if (outcome != cache::CacheOutcome::kMiss) ++result.cache_hits;
    } else {
      result.solution =
          engine::solve_portfolio(instance, member, config.cancel).best;
    }
    result.global_blocks = result.solution.schedule.global_boundaries.size();
    if (config.certify) {
      attach_certificate(instance, result.solution, config.bound);
    }
    return result;
  }

  // Segment windows [starts[k], starts[k+1]).
  std::vector<std::size_t> seg_starts;
  for (std::size_t s = 0; s < n; s += config.segment) seg_starts.push_back(s);
  const std::size_t segments = seg_starts.size();
  result.segments = segments;
  auto seg_end = [&](std::size_t k) {
    return k + 1 < segments ? seg_starts[k + 1] : n;
  };

  // Every window must fit the private-global pool on its own — a finer
  // segmentation is the only remedy, so fail with that advice up front
  // instead of letting every portfolio member die on the quota check.
  for (std::size_t k = 0; k < segments; ++k) {
    HYPERREC_ENSURE(block_feasible(instance, seg_starts[k], seg_end(k)),
                    "a segment exceeds the private-global pool on its own; "
                    "shrink HierarchicalConfig::segment");
  }

  // Segments are solved against the machine minus its global
  // hyperreconfiguration cost — the boundary DP below owns the w·#blocks
  // term (same construction as solve_private_global's block machine).
  MachineSpec seg_machine = machine;
  seg_machine.global_init = 0;

  std::vector<MTSolution> seg_solutions(segments);
  std::vector<std::string> seg_errors(segments);
  std::atomic<std::size_t> hits{0};
  auto solve_segment = [&](std::size_t k) noexcept {
    try {
      const std::size_t lo = seg_starts[k];
      const std::size_t hi = seg_end(k);
      MultiTaskTrace sub;
      for (std::size_t j = 0; j < m; ++j) {
        sub.add_task(trace.task(j).slice(lo, hi));
      }
      if (config.cache) {
        cache::CacheOutcome outcome = cache::CacheOutcome::kMiss;
        const cache::InstanceKey key =
            cache::make_instance_key(sub, seg_machine, options);
        seg_solutions[k] = config.cache->get_or_compute_guarded(
            key,
            [&] {
              SolveInstance window(std::move(sub), seg_machine, options);
              return cache::ComputeResult{
                  engine::solve_portfolio(window, member, config.cancel).best,
                  true};
            },
            &outcome);
        if (outcome != cache::CacheOutcome::kMiss) {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        const SolveInstance window(std::move(sub), seg_machine, options);
        seg_solutions[k] =
            engine::solve_portfolio(window, member, config.cancel).best;
      }
      check_segment_shape(seg_solutions[k], seg_machine);
    } catch (const std::exception& e) {
      seg_errors[k] = e.what();
    }
  };

  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
  if (config.parallel && segments > 1 && !pool.on_worker_thread()) {
    std::vector<std::future<void>> futures;
    futures.reserve(segments);
    for (std::size_t k = 0; k < segments; ++k) {
      futures.push_back(pool.submit([&, k] { solve_segment(k); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t k = 0; k < segments; ++k) solve_segment(k);
  }
  for (std::size_t k = 0; k < segments; ++k) {
    if (!seg_errors[k].empty()) {
      throw PreconditionError("hierarchical segment " + std::to_string(k) +
                              " failed: " + seg_errors[k]);
    }
  }
  result.cache_hits = hits.load(std::memory_order_relaxed);

  // Stitch: concatenate per-task partition starts.  Each window's partition
  // starts at its local step 0, so every segment start is a boundary of
  // every task and the splice is valid by construction.
  std::vector<std::vector<std::size_t>> task_starts(m);
  for (std::size_t j = 0; j < m; ++j) task_starts[j].reserve(n / 4 + 4);
  for (std::size_t k = 0; k < segments; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      for (const std::size_t s : seg_solutions[k].schedule.tasks[j].starts()) {
        task_starts[j].push_back(seg_starts[k] + s);
      }
    }
  }

  // Boundary DP over segment edges (generalizing solve_private_global's
  // outer DP).  Given the stitched local partitions, the block structure
  // only decides the w·#blocks term and per-block quota feasibility — the
  // hyper/reconfig terms are unchanged because every segment start is
  // already a boundary of every task.  Feasibility is monotone in the
  // range, so the scan breaks at the first infeasible end.
  std::vector<std::size_t> global_bounds;
  if (machine.has_global_resources()) {
    const Cost w = machine.global_init;
    std::vector<Cost> best(segments + 1, kInfinity);
    std::vector<std::size_t> parent(segments + 1, 0);
    best[0] = 0;
    for (std::size_t a = 0; a < segments; ++a) {
      if (best[a] >= kInfinity) continue;
      for (std::size_t b = a + 1; b <= segments; ++b) {
        const std::size_t hi = b < segments ? seg_starts[b] : n;
        if (!block_feasible(instance, seg_starts[a], hi)) break;
        const Cost candidate = best[a] + w;
        if (candidate < best[b]) {
          best[b] = candidate;
          parent[b] = a;
        }
      }
    }
    HYPERREC_ASSERT(best[segments] < kInfinity);  // single segments feasible
    for (std::size_t cursor = segments; cursor != 0; cursor = parent[cursor]) {
      global_bounds.push_back(seg_starts[parent[cursor]]);
    }
    std::reverse(global_bounds.begin(), global_bounds.end());
  }
  result.global_blocks = global_bounds.size();

  // Seam repair: a forced boundary at a segment edge is dropped for task j
  // when merging the adjacent intervals is an exact-cost win.  Only under
  // task-sequential reconfiguration upload (per-task deltas separate; under
  // the per-step max they do not), and never at a chosen global boundary
  // (those must stay boundaries of every task).  Deltas are computed
  // against the current partition state, so each accepted merge is an exact
  // improvement of the final evaluated cost.
  if (config.seam_repair &&
      options.reconfig_upload == UploadMode::kTaskSequential) {
    const bool hyper_parallel =
        options.hyper_upload == UploadMode::kTaskParallel;
    for (std::size_t k = 1; k < segments; ++k) {
      const std::size_t seam = seg_starts[k];
      if (std::binary_search(global_bounds.begin(), global_bounds.end(),
                             seam)) {
        continue;
      }
      // Tasks still hyperreconfiguring at this seam (all of them, until a
      // merge removes one).
      std::vector<std::size_t> at_seam(m);
      for (std::size_t j = 0; j < m; ++j) at_seam[j] = 1;
      auto seam_hyper = [&]() {
        Cost term = 0;
        for (std::size_t j = 0; j < m; ++j) {
          if (!at_seam[j]) continue;
          const Cost v = machine.tasks[j].local_init;
          term = hyper_parallel ? std::max(term, v) : term + v;
        }
        return term;
      };
      for (std::size_t j = 0; j < m; ++j) {
        std::vector<std::size_t>& starts = task_starts[j];
        const auto it =
            std::lower_bound(starts.begin(), starts.end(), seam);
        HYPERREC_ASSERT(it != starts.end() && *it == seam && it != starts.begin());
        const std::size_t p = *(it - 1);
        const std::size_t q =
            (it + 1 != starts.end()) ? *(it + 1) : n;
        const TaskTraceStats& stats = instance.task_stats(j);
        auto interval_cost = [&stats](std::size_t lo, std::size_t hi) {
          return (static_cast<Cost>(stats.local_union_count(lo, hi)) +
                  static_cast<Cost>(stats.max_private_demand(lo, hi))) *
                 static_cast<Cost>(hi - lo);
        };
        const Cost reconfig_delta = interval_cost(p, q) -
                                    interval_cost(p, seam) -
                                    interval_cost(seam, q);
        const Cost before_hyper = seam_hyper();
        at_seam[j] = 0;
        const Cost hyper_delta = seam_hyper() - before_hyper;
        if (reconfig_delta + hyper_delta < 0) {
          starts.erase(it);
          ++result.seam_merges;
        } else {
          at_seam[j] = 1;
        }
      }
    }
  }

  MultiTaskSchedule schedule;
  schedule.tasks.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    schedule.tasks.push_back(
        Partition::from_starts(std::move(task_starts[j]), n));
  }
  schedule.global_boundaries = std::move(global_bounds);
  result.solution = make_solution(instance, std::move(schedule));
  if (config.certify) {
    attach_certificate(instance, result.solution, config.bound);
  }
  return result;
}

}  // namespace hyperrec
