#include "core/private_global.hpp"

#include <algorithm>
#include <limits>

#include "core/coordinate_descent.hpp"

namespace hyperrec {

namespace {

constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;

/// Copies steps [lo, hi) of every task into a fresh trace.
MultiTaskTrace subtrace(const MultiTaskTrace& trace, std::size_t lo,
                        std::size_t hi) {
  MultiTaskTrace result;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    TaskTrace task(trace.task(j).local_universe());
    for (std::size_t i = lo; i < hi; ++i) {
      task.push_back(trace.task(j).at(i));
    }
    result.add_task(std::move(task));
  }
  return result;
}

bool block_feasible(const MultiTaskTraceStats& stats,
                    const MachineSpec& machine, std::size_t lo,
                    std::size_t hi) {
  std::uint64_t quota_sum = 0;
  for (std::size_t j = 0; j < stats.task_count(); ++j) {
    quota_sum += stats.task(j).max_private_demand(lo, hi);
  }
  return quota_sum <= machine.private_global_units;
}

}  // namespace

PrivateGlobalSolution solve_private_global(const MultiTaskTrace& trace,
                                           const MachineSpec& machine,
                                           const EvalOptions& options,
                                           const PrivateGlobalConfig& config) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(trace.synchronized(),
                  "private-global solver needs equal-length traces");
  HYPERREC_ENSURE(machine.private_global_units > 0,
                  "machine has no private-global resources; use a plain "
                  "MT-Switch solver");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();

  MTSolverFn inner = config.inner;
  if (!inner) {
    inner = [](const SolveInstance& block, const CancelToken& cancel) {
      CoordinateDescentConfig cd_config;
      cd_config.cancel = cancel;
      return solve_coordinate_descent(block, cd_config);
    };
  }

  // Shared interval-query precomputation for the feasibility scans and the
  // per-block quota extraction (O(1) per query instead of O(range)).
  const MultiTaskTraceStats stats(trace);

  // Candidate boundaries, always containing 0, sorted + deduplicated.
  std::vector<std::size_t> candidates = config.candidates;
  if (candidates.empty()) {
    candidates.resize(n);
    for (std::size_t i = 0; i < n; ++i) candidates[i] = i;
  } else {
    candidates.push_back(0);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    HYPERREC_ENSURE(candidates.back() < n, "candidate beyond last step");
  }
  const std::size_t c = candidates.size();

  // Blocks are solved against the parent machine minus its global
  // hyperreconfiguration cost: the private-global pool stays intact
  // (validate_trace and the evaluator's quota check need the real unit
  // count, and the private demands stay in the trace so the evaluator adds
  // them to |h^loc|), but global_init drops to 0 because the outer DP
  // charges w per block itself.
  MachineSpec block_machine = machine;
  block_machine.global_init = 0;

  // An inner solver must treat its block as a single global block: any
  // further global boundary it placed would silently vanish in the stitch,
  // leaving the DP's cost estimate and the stitched schedule inconsistent.
  static const std::vector<std::size_t> kSingleBlock{0};

  // Forward DP over candidate boundaries, interleaved with the block
  // solves.  When row `a` is processed best[a] is final, so blocks starting
  // at a candidate the DP cannot reach are never solved; and because the
  // per-block quotas are range maxima, a superset of an infeasible block is
  // infeasible too — the scan `break`s at the first infeasible end.
  PrivateGlobalSolution result;
  std::vector<Cost> best(c + 1, kInfinity);
  std::vector<std::size_t> parent(c + 1, 0);
  std::vector<MTSolution> best_block(c + 1);  // inner solution of (parent[b], b)
  best[0] = 0;
  for (std::size_t a = 0; a < c; ++a) {
    if (best[a] >= kInfinity) continue;  // unreachable from candidate 0
    for (std::size_t b = a + 1; b <= c; ++b) {
      const std::size_t lo = candidates[a];
      const std::size_t hi = b < c ? candidates[b] : n;
      if (!block_feasible(stats, machine, lo, hi)) break;
      // One SolveInstance per block: the inner solver (and anything it
      // races) shares the block's precomputation.
      const SolveInstance block(subtrace(trace, lo, hi), block_machine,
                                options);
      MTSolution solution = inner(block, config.cancel);
      ++result.inner_invocations;
      HYPERREC_ENSURE(solution.schedule.global_boundaries == kSingleBlock,
                      "inner solver split a private-global block with extra "
                      "global hyperreconfigurations; blocks must stay single "
                      "global blocks (add candidates instead)");
      const Cost candidate = best[a] + machine.global_init + solution.total();
      if (candidate < best[b]) {
        best[b] = candidate;
        parent[b] = a;
        best_block[b] = std::move(solution);
      }
    }
  }
  HYPERREC_ENSURE(best[c] < kInfinity,
                  "no feasible global-block decomposition exists");

  // Reconstruct blocks.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // candidate idx
  for (std::size_t cursor = c; cursor != 0; cursor = parent[cursor]) {
    blocks.emplace_back(parent[cursor], cursor);
  }
  std::reverse(blocks.begin(), blocks.end());

  // Stitch per-block schedules into one global schedule.
  std::vector<std::vector<std::size_t>> starts(m);
  for (const auto& [a, b] : blocks) {
    const std::size_t lo = candidates[a];
    const std::size_t hi = b < c ? candidates[b] : n;
    const MTSolution& sol = best_block[b];
    for (std::size_t j = 0; j < m; ++j) {
      for (const std::size_t s : sol.schedule.tasks[j].starts()) {
        starts[j].push_back(lo + s);
      }
    }
    std::vector<std::uint32_t> quotas(m);
    for (std::size_t j = 0; j < m; ++j) {
      quotas[j] = stats.task(j).max_private_demand(lo, hi);
    }
    result.quotas.push_back(std::move(quotas));
  }

  MultiTaskSchedule schedule;
  for (std::size_t j = 0; j < m; ++j) {
    schedule.tasks.push_back(Partition::from_starts(std::move(starts[j]), n));
  }
  for (const auto& [a, b] : blocks) {
    schedule.global_boundaries.push_back(candidates[a]);
  }
  result.solution = make_solution(trace, machine, std::move(schedule), options);
  return result;
}

}  // namespace hyperrec
