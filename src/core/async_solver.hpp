// Exact solver for the asynchronous (non-synchronised) MT-Switch model
// (§4.1).
//
// In the asynchronous model the machine-level cost is
//
//   init(h) + max_j Σ_i (v_j + cost(h_j,i)·|S_{j,i}|)
//
// — the slowest task's total, since the tasks' (hyper)reconfiguration work
// overlaps.  The per-task totals are independent of each other, so
// minimising each task's total with the single-task interval DP minimises
// the maximum as well: the asynchronous problem is *exactly* solvable in
// O(Σ_j n_j²), in contrast to the synchronised case where the per-step
// combine couples the tasks (Theorem 1's DP or heuristics needed).
//
// This observation is the asynchronous counterpart of the paper's
// tractability landscape and is verified against brute force in the tests.
#pragma once

#include "core/solver.hpp"
#include "model/cost_switch.hpp"

namespace hyperrec {

struct AsyncSolution {
  MultiTaskSchedule schedule;
  AsyncCostBreakdown breakdown;

  [[nodiscard]] Cost total() const noexcept { return breakdown.total; }
};

/// Exact optimum of the §4.1 asynchronous model.  Task traces may have
/// different lengths; public resources must be absent (§3).  Changeover
/// costs are supported exactly via the per-task changeover DP.
[[nodiscard]] AsyncSolution solve_async(const MultiTaskTrace& trace,
                                        const MachineSpec& machine,
                                        const EvalOptions& options = {});

}  // namespace hyperrec
