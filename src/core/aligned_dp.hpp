// Exact solver for *partially reconfigurable* machines (paper §3): machines
// where reconfigurations are per-task but hyperreconfigurations can only be
// performed for all tasks at a time.  With all boundaries aligned, the
// fully synchronised MT-Switch cost decomposes over intervals:
//
//   cost([i,j)) = combine_hyper_j(v_j [+ changeover_j])
//               + combine_reconfig_j(|U_j(i,j)| + priv_j(i,j)) · (j − i)
//
// (combine = max for task-parallel upload, Σ for task-sequential; the public
// context size enters the reconfig combine).  An O(m·n²) interval DP is then
// exact for this machine class, and serves as a strong baseline and seed for
// the partial-hyperreconfiguration heuristics.
//
// Changeover costs are supported only for aligned schedules with hyper
// upload task-sequential (the per-task Δ terms add); for task-parallel the
// combine of (v_j + Δ_j) is used.
#pragma once

#include "core/solver.hpp"

namespace hyperrec {

/// Exact aligned-boundary solution under the instance's evaluation options.
[[nodiscard]] MTSolution solve_aligned_dp(const SolveInstance& instance);

/// Boundary convenience: builds a one-off instance.
[[nodiscard]] MTSolution solve_aligned_dp(const MultiTaskTrace& trace,
                                          const MachineSpec& machine,
                                          const EvalOptions& options = {});

}  // namespace hyperrec
