// Exact dynamic program of Theorem 1 for the fully synchronised MT-Switch
// problem with task-parallel partial hyperreconfigurations.
//
// The paper states (and omits the algorithm for) a polynomial DP of
// complexity O(m·n⁴·l^{2m}) without private-global resources.  The state
// structure realised here matches that bound's shape:
//
//   At step t each task j sits in a *committed* hypercontext interval whose
//   end e_j and minimal hypercontext size u_j = |U_j(start_j, e_j]| were
//   fixed when the interval was entered (at which point its start was known,
//   so u_j is a function of the chosen end).  The DP state is
//   (t, (e_1,u_1), …, (e_m,u_m)); per step the machine pays the reconfig
//   combine of the u_j, and whenever intervals end, the tasks starting anew
//   choose fresh ends (paying the hyper combine of their v_j at the entry
//   step).  States: n per step × (n·l)^m; transitions n per ending task —
//   within the O(m n⁴ l^{2m}) envelope (the exponent in m is in the state,
//   not the schedule space, which is why this is polynomial for fixed m
//   while exhaustive search is 2^{m(n−1)}).
//
// Exponential only in m; practical for m ≤ 3 and n up to a few dozen.  The
// instance size is guarded via state_space_estimate().
#pragma once

#include "core/solver.hpp"

namespace hyperrec {

/// Rough upper bound on the number of DP states, n·Π_j(n·(l_j+1)).
[[nodiscard]] double theorem1_state_space(const MultiTaskTrace& trace,
                                          const MachineSpec& machine);

/// Exact optimum via the Theorem-1 DP.  Requirements: synchronized trace,
/// no private-global or public resources, no changeover, m ≤ 3, and a state
/// space below ~50M (PreconditionError otherwise).  Upload disciplines are
/// honoured (the paper's theorem addresses the task-parallel case; the
/// task-sequential combine is supported as well since the DP is agnostic).
[[nodiscard]] MTSolution solve_theorem1_dp(const MultiTaskTrace& trace,
                                           const MachineSpec& machine,
                                           const EvalOptions& options = {});

}  // namespace hyperrec
