// Block coordinate descent for the fully synchronised MT-Switch problem.
//
// The per-step cost couples the tasks only through the combine (max or Σ)
// over their hypercontext sizes and hyperreconfiguration indicators.  With
// all tasks but one frozen, the remaining task's optimal partition is again
// an interval DP:
//
//   interval [i, j) of task t costs
//     hyper_delta(i)  — the increase of step i's hyper term when task t's
//                        boundary (cost v_t) joins the frozen boundaries, and
//     Σ_{l ∈ [i,j)} (step_reconfig_with(l, u) − step_reconfig_without(l))
//                      with u = |U_t(i,j)| + priv_t(i,j),
//
// both computable from per-step aggregates of the frozen tasks.  Sweeping
// tasks round-robin until no sweep improves the cost yields a local optimum
// that in practice matches the exhaustive optimum on small instances (see
// tests/property) and beats the GA on the SHyRA trace.  O(rounds·m·n³) worst
// case, with small constants.  Changeover costs are not supported (the
// per-interval cost would depend on the neighbouring intervals).
#pragma once

#include "core/solver.hpp"

namespace hyperrec {

struct CoordinateDescentConfig {
  /// Maximum number of full sweeps over all tasks.
  std::size_t max_rounds = 32;
  /// Initial schedule; if empty, the aligned DP solution is used.
  std::vector<MultiTaskSchedule> seed;  // 0 or 1 entries
  /// Checked between per-task sweeps; when it fires the current schedule is
  /// returned (re-evaluated, never torn).  A token that is already expired
  /// at entry skips the aligned-DP seeding and starts from the
  /// single-interval schedule.  Default: never cancels.
  CancelToken cancel;
};

[[nodiscard]] MTSolution solve_coordinate_descent(
    const SolveInstance& instance, const CoordinateDescentConfig& config = {});

/// Boundary convenience: builds a one-off instance.
[[nodiscard]] MTSolution solve_coordinate_descent(
    const MultiTaskTrace& trace, const MachineSpec& machine,
    const EvalOptions& options = {},
    const CoordinateDescentConfig& config = {});

}  // namespace hyperrec
