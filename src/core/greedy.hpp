// Greedy window-lookahead heuristic for the MT-Switch problem.
//
// Processes each task independently, left to right.  At each step it
// compares, over a lookahead window of W steps, the reconfiguration cost of
// extending the current hypercontext against paying v_j for a fresh
// hypercontext fitted to the window, and starts a new interval when the
// fresh one is cheaper.  Runs in O(m·n·W) and serves as the fast, online-
// capable baseline (the decision at step l only looks W steps ahead — this
// is the kind of rule a runtime system could apply without the full trace).
#pragma once

#include "core/solver.hpp"

namespace hyperrec {

struct GreedyConfig {
  std::size_t window = 8;
};

[[nodiscard]] MTSolution solve_greedy(const SolveInstance& instance,
                                      const GreedyConfig& config = {});

/// Boundary convenience: builds a one-off instance.
[[nodiscard]] MTSolution solve_greedy(const MultiTaskTrace& trace,
                                      const MachineSpec& machine,
                                      const EvalOptions& options = {},
                                      const GreedyConfig& config = {});

}  // namespace hyperrec
