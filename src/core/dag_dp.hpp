// Optimal single-task solver for the DAG cost model (§2): interval DP with
// init(h) = w constant and the cheapest satisfying hypercontext per
// interval.  The DAG's monotonicity (edges only increase capability and
// cost) is validated by the model; the solver only relies on the
// satisfaction sets and costs.  O(n²·|H|).
//
// solve_mt_dag_aligned extends it to the MT-DAG model (§4.1) for machines
// whose hyperreconfigurations are aligned across tasks: one DAG model per
// task, per-interval cheapest hypercontexts per task, reconfig costs
// combined task-parallel (max) or task-sequentially (Σ).
#pragma once

#include "model/cost_dag.hpp"
#include "model/types.hpp"

namespace hyperrec {

struct DagSolution {
  DagSchedule schedule;
  Cost total = 0;
};

[[nodiscard]] DagSolution solve_dag_dp(const DagCostModel& model,
                                       const std::vector<std::size_t>& sequence);

struct MtDagSolution {
  std::vector<std::size_t> starts;  ///< aligned interval starts
  /// hypercontexts[k][j] — hypercontext of task j in interval k.
  std::vector<std::vector<std::size_t>> hypercontexts;
  Cost total = 0;
};

/// Aligned multi-task DAG solver; `sequences[j]` is task j's kind sequence
/// (all must have equal length), `models[j]` its DAG model.  `w` is the cost
/// of one aligned hyperreconfiguration (paper: init(h) = w), and
/// `task_parallel` selects the reconfiguration upload discipline.
[[nodiscard]] MtDagSolution solve_mt_dag_aligned(
    const std::vector<DagCostModel>& models,
    const std::vector<std::vector<std::size_t>>& sequences, Cost w,
    bool task_parallel);

}  // namespace hyperrec
