#include "core/annealing.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace hyperrec {

MTSolution solve_annealing(const MultiTaskTrace& trace,
                           const MachineSpec& machine,
                           const EvalOptions& options, const SaConfig& config) {
  return solve_annealing(SolveInstance(trace, machine, options), config);
}

MTSolution solve_annealing(const SolveInstance& instance,
                           const SaConfig& config) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  HYPERREC_ENSURE(trace.synchronized(), "annealing needs equal-length traces");
  HYPERREC_ENSURE(config.seed_schedule.size() <= 1, "at most one seed");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  const bool global_resources = machine.has_global_resources();

  Xoshiro256 rng(config.seed);

  std::vector<DynamicBitset> masks;
  if (config.seed_schedule.empty()) {
    masks.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      DynamicBitset mask(n);
      mask.set(0);
      masks.push_back(std::move(mask));
    }
  } else {
    for (const Partition& partition : config.seed_schedule.front().tasks) {
      masks.push_back(partition.to_boundary_mask());
    }
  }

  auto build = [&](const std::vector<DynamicBitset>& genes) {
    MultiTaskSchedule schedule;
    schedule.tasks.reserve(genes.size());
    for (const DynamicBitset& mask : genes) {
      schedule.tasks.push_back(Partition::from_boundary_mask(mask));
    }
    if (global_resources) schedule.global_boundaries.push_back(0);
    return schedule;
  };
  auto cost_of = [&](const std::vector<DynamicBitset>& genes) {
    return evaluate_fully_sync_switch(instance, build(genes)).total;
  };

  Cost current = cost_of(masks);
  std::vector<DynamicBitset> best = masks;
  Cost best_cost = current;

  double temperature = config.initial_temperature > 0
                           ? config.initial_temperature
                           : static_cast<double>(machine.total_switches());

  // Hoisted out of the iteration loop: copy-assignment below reuses the
  // vector's (and each bitset's) capacity instead of reallocating per move.
  std::vector<DynamicBitset> neighbour;

  // lint: hot-loop begin
  for (std::size_t it = 0; it < config.iterations; ++it) {
    if (config.cancel.cancelled()) break;
    // Move: flip a random boundary bit, or slide a boundary by one step.
    const std::size_t j = rng.uniform(m);
    const std::size_t s = 1 + rng.uniform(n - 1);
    neighbour = masks;
    if (rng.flip(0.7) || n < 3) {
      if (neighbour[j].test(s)) {
        neighbour[j].reset(s);
      } else {
        neighbour[j].set(s);
      }
    } else {
      // Slide: move boundary s to s±1 when possible.
      const std::size_t to = rng.flip(0.5) && s + 1 < n ? s + 1
                             : (s > 1 ? s - 1 : s + 1);
      if (to < n && neighbour[j].test(s) && !neighbour[j].test(to)) {
        neighbour[j].reset(s);
        neighbour[j].set(to);
      } else if (neighbour[j].test(s)) {
        neighbour[j].reset(s);
      } else {
        neighbour[j].set(s);
      }
    }

    const Cost candidate = cost_of(neighbour);
    const Cost delta = candidate - current;
    if (delta <= 0 ||
        rng.uniform01() < std::exp(-static_cast<double>(delta) / temperature)) {
      masks = std::move(neighbour);
      current = candidate;
      if (current < best_cost) {
        best_cost = current;
        best = masks;
      }
    }
    temperature *= config.cooling;
  }
  // lint: hot-loop end
  return make_solution(instance, build(best));
}

}  // namespace hyperrec
