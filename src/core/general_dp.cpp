#include "core/general_dp.hpp"

#include <algorithm>
#include <limits>

#include "support/ensure.hpp"

namespace hyperrec {

namespace {
constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;
}

GeneralSolution solve_general_dp(const GeneralCostModel& model,
                                 const std::vector<std::size_t>& sequence) {
  const std::size_t n = sequence.size();
  HYPERREC_ENSURE(n > 0, "empty context sequence");
  for (const std::size_t kind : sequence) {
    HYPERREC_ENSURE(kind < model.kind_count(), "context kind out of range");
  }

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  std::vector<std::size_t> chosen(n + 1, 0);
  best[0] = 0;

  for (std::size_t end = 1; end <= n; ++end) {
    DynamicBitset needed(model.kind_count());
    for (std::size_t start = end; start-- > 0;) {
      needed.set(sequence[start]);
      // Cheapest hypercontext for this interval.
      Cost interval_best = kInfinity;
      std::size_t interval_h = model.hypercontext_count();
      const Cost len = static_cast<Cost>(end - start);
      for (std::size_t h = 0; h < model.hypercontext_count(); ++h) {
        if (!model.satisfies_all(h, needed)) continue;
        const Cost c = model.init(h) + model.cost(h) * len;
        if (c < interval_best) {
          interval_best = c;
          interval_h = h;
        }
      }
      if (interval_h == model.hypercontext_count()) continue;  // unsatisfiable
      const Cost candidate = best[start] + interval_best;
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
        chosen[end] = interval_h;
      }
    }
  }
  HYPERREC_ENSURE(best[n] < kInfinity,
                  "no hypercontext satisfies some requirement");

  GeneralSolution solution;
  solution.total = best[n];
  std::vector<std::size_t> starts;
  std::vector<std::size_t> hypers;
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    starts.push_back(parent[cursor]);
    hypers.push_back(chosen[cursor]);
  }
  std::reverse(starts.begin(), starts.end());
  std::reverse(hypers.begin(), hypers.end());
  solution.schedule = GeneralSchedule{std::move(starts), std::move(hypers)};
  return solution;
}

}  // namespace hyperrec
