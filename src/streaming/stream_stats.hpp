// Incremental interval-query statistics for traces that grow step-by-step.
//
// TaskTraceStats (model/trace_stats.hpp) precomputes its sparse tables once
// per instance — the right trade-off for offline solving, but a full rebuild
// per appended step costs O(n·log n·words + n·|support|) and live streams
// append thousands of steps.  The classes here maintain the *same three
// views* (interval unions, O(1) private-demand range maxima, per-switch
// prefix presence counts) under append:
//
//   * TaskStreamStats — one task.  Appending step n adds exactly one row to
//     each sparse-table level (the row covering [n+1−2^k, n+1), computed
//     from two existing level-(k−1) rows) and one prefix entry per support
//     switch, so an append costs O(log n·words + |support|) — amortized
//     O(|X|/64) per step per task for the union work, against the
//     O(n·log n·|X|/64) of a rebuild.  Levels are stored as separately
//     growable arenas (level-major) instead of TaskTraceStats' single flat
//     arena precisely so rows can be appended in place; presence counts are
//     stored column-major (one prefix vector per support switch) so a
//     switch first seen at step i joins with a zero-padded history instead
//     of re-laying-out every row.
//
//   * TraceBuilderStats — a growing synchronized MultiTaskTrace plus one
//     TaskStreamStats per task and the cross-task per-step demand sums with
//     their range-max table (the O(1) feasibility pre-check the streaming
//     triggers poll).  Owns the trace: `append_step` feeds both the trace
//     and every view.  Bulk appends of at least `rebuild_threshold` steps
//     fall back to a from-scratch rebuild of all tables (a rebuild is
//     O(n·log n) total while k single appends cost O(k·log n) — for k on
//     the order of n the rebuild's better constants win, and the fallback
//     also bounds drift if a caller alternates huge splices with queries).
//
// Consistency is testable, not assumed: assert_consistent_with() compares a
// stream-built view against a freshly built TaskTraceStats *bit-identically*
// — every sparse-table row (via the power-of-two ranges that read a single
// row), every presence prefix, every support entry — and the property suite
// runs it at every appended step across word-seam universes.
#pragma once

#include <cstdint>
#include <vector>

#include "model/trace.hpp"
#include "model/trace_stats.hpp"
#include "support/bitset.hpp"

namespace hyperrec::streaming {

/// Incrementally maintained interval-query tables for one growing task
/// trace.  Query API mirrors TaskTraceStats; results are bit-identical to a
/// from-scratch build over the same steps.
class TaskStreamStats {
 public:
  /// Empty stream over `universe` local switches.
  explicit TaskStreamStats(std::size_t universe);

  /// Bulk build over an existing trace: level-by-level table construction
  /// (one OR pass per level, one prefix pass per support column) — the
  /// cheaper-constants path the rebuild_threshold fallback uses.  The
  /// resulting tables are bit-identical to appending every step.
  explicit TaskStreamStats(const TaskTrace& trace);

  /// Appends one step; O(log n·words + |support| + new switches).
  void append(const ContextRequirement& req);

  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  /// Union of local requirements over [lo, hi); O(universe/64).
  [[nodiscard]] DynamicBitset local_union(std::size_t lo,
                                          std::size_t hi) const;

  /// |local_union(lo, hi)| without materialising the union.
  [[nodiscard]] std::size_t local_union_count(std::size_t lo,
                                              std::size_t hi) const;

  /// Maximum private demand over [lo, hi); 0 for an empty range; O(1).
  [[nodiscard]] std::uint32_t max_private_demand(std::size_t lo,
                                                 std::size_t hi) const;

  /// True iff switch b appears in some step of [lo, hi); O(1).
  [[nodiscard]] bool switch_present(std::size_t b, std::size_t lo,
                                    std::size_t hi) const;

  /// Number of steps in [lo, hi) that require switch b; O(1).
  [[nodiscard]] std::uint32_t switch_step_count(std::size_t b, std::size_t lo,
                                                std::size_t hi) const;

  /// Switches that appeared in at least one step, in order of first
  /// appearance (NOT ascending — the stream discovers them online; sort a
  /// copy when ascending order matters).
  [[nodiscard]] const std::vector<std::size_t>& support() const noexcept {
    return support_;
  }

  /// Debug hook: compares this stream-built view bit-identically against a
  /// freshly built TaskTraceStats over the same trace — every sparse-table
  /// row of both tables, every presence prefix of every support switch.
  /// Throws PreconditionError on the first divergence.
  void assert_consistent_with(const TaskTraceStats& full) const;

 private:
  void check_range(std::size_t lo, std::size_t hi) const {
    HYPERREC_ENSURE(lo <= hi && hi <= steps_,
                    "stream stats query range out of bounds");
  }

  struct RowPair {
    const DynamicBitset::Word* a;
    const DynamicBitset::Word* b;
  };
  [[nodiscard]] RowPair union_rows_for(std::size_t lo, std::size_t hi) const;

  std::size_t universe_ = 0;
  std::size_t words_ = 0;
  std::size_t steps_ = 0;

  /// log2_[len] = floor(log2(len)) for len in [1, steps]; grown per append.
  std::vector<std::uint8_t> log2_;
  /// union_levels_[k] holds rows of `words_` words each; row i covers steps
  /// [i, i + 2^k).  Each level is its own growable arena.
  std::vector<std::vector<DynamicBitset::Word>> union_levels_;
  /// priv_levels_[k][i] = max private demand over steps [i, i + 2^k).
  std::vector<std::vector<std::uint32_t>> priv_levels_;
  /// presence_[si][i] = #steps < i requiring support_[si] (column-major).
  std::vector<std::vector<std::uint32_t>> presence_;
  std::vector<std::size_t> support_;
  /// universe → index into support_, or npos for never-required switches.
  std::vector<std::size_t> support_index_;
};

struct TraceBuilderConfig {
  /// Bulk appends of at least this many steps rebuild all tables from
  /// scratch instead of appending step-by-step; 0 disables the fallback.
  std::size_t rebuild_threshold = 1024;
};

/// A growing synchronized multi-task trace bundled with incrementally
/// maintained per-task stats and cross-task demand sums.  The streaming
/// counterpart of SolveInstance's eager MultiTaskTraceStats.
class TraceBuilderStats {
 public:
  /// Empty trace with one task per universe entry (at least one task).
  explicit TraceBuilderStats(const std::vector<std::size_t>& universes,
                             TraceBuilderConfig config = {});

  /// Adopts an existing synchronized trace and builds all views over it.
  explicit TraceBuilderStats(MultiTaskTrace trace,
                             TraceBuilderConfig config = {});

  /// Appends one synchronized step (requirement j goes to task j).
  void append_step(std::vector<ContextRequirement> step);

  /// Appends many steps; falls back to a full rebuild when the chunk is at
  /// least `rebuild_threshold` steps (see TraceBuilderConfig).
  void append_steps(std::vector<std::vector<ContextRequirement>> steps);

  [[nodiscard]] const MultiTaskTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] const TaskStreamStats& task(std::size_t j) const {
    HYPERREC_ENSURE(j < tasks_.size(), "task index out of range");
    return tasks_[j];
  }

  /// Σ_j private demand of task j at step i; O(1).
  [[nodiscard]] std::uint64_t step_demand_sum(std::size_t i) const;

  /// max over steps [lo, hi) of step_demand_sum; O(1).  The streaming
  /// engine's demand-spike trigger compares a fresh step against this over
  /// the last solved window without touching any per-task table.
  [[nodiscard]] std::uint64_t max_step_demand_sum(std::size_t lo,
                                                  std::size_t hi) const;

  /// Number of full rebuilds performed by the bulk-append fallback.
  [[nodiscard]] std::size_t rebuild_count() const noexcept {
    return rebuilds_;
  }

  /// Debug hook: rebuilds MultiTaskTraceStats from the current trace and
  /// asserts every per-task view and every demand sum matches
  /// bit-identically.  Throws PreconditionError on divergence.
  void assert_consistent_with_rebuild() const;

 private:
  void ingest_step_views(const std::vector<ContextRequirement>& step);
  void rebuild_all();

  TraceBuilderConfig config_;
  MultiTaskTrace trace_;
  std::vector<TaskStreamStats> tasks_;
  std::size_t steps_ = 0;
  std::size_t rebuilds_ = 0;

  std::vector<std::uint8_t> log2_;
  std::vector<std::uint64_t> demand_sums_;
  /// demand_levels_[k][i] = max over steps [i, i + 2^k) of the per-step sums.
  std::vector<std::vector<std::uint64_t>> demand_levels_;
};

}  // namespace hyperrec::streaming
