// Streaming solve engine: windowed, warm-started re-solves over a growing
// trace.
//
// The paper's reconfiguration problems are stated offline — the whole
// context-requirement trace is known before the solve.  Serving live
// traffic inverts that: tasks issue requirements step-by-step, and the
// published schedule must stay valid for every step seen so far while being
// refreshed cheaply.  The classic results on run-time reconfiguration
// (online prefetch scheduling, incremental window-bounded decisions) say
// the win comes from *not* re-solving from scratch; this engine implements
// that recipe on top of the existing stack:
//
//   trace grows ──► TraceBuilderStats (incremental tables, O(1) pre-checks)
//        │
//        ├── triggers: step count / demand spike (O(1) range-max) /
//        │             rent-or-buy policy (online/) / wall-clock tick
//        ▼
//   re-solve the last `window` steps with the portfolio, warm-started from
//   the previous window's schedule (and the solve cache's window-shape
//   warm-start index when one is attached)
//        ▼
//   splice: published boundaries before the window stay frozen (the stable
//   prefix), the fresh window schedule is shifted onto [w_lo, n) — one
//   valid MultiTaskSchedule over the whole trace, swapped in atomically
//   (a failed or cancelled window solve never tears the published schedule).
//
// Between re-solves an appended step simply extends every task's last
// interval, so the published schedule always covers [0, steps()).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/solve_cache.hpp"
#include "engine/portfolio.hpp"
#include "model/instance.hpp"
#include "online/rent_or_buy.hpp"
#include "streaming/stream_stats.hpp"
#include "support/cancel.hpp"

namespace hyperrec::streaming {

/// Why a window re-solve ran.
enum class TriggerKind : std::uint8_t {
  kInitial,      ///< first appended step
  kQuotaRepair,  ///< the growing last quota block overflowed the pool
  kStepCount,    ///< `every_steps` new steps accumulated
  kDemandSpike,  ///< a step's cross-task demand sum spiked vs the last window
  kRentOrBuy,    ///< a per-task rent-or-buy controller bought a re-fit
  kDeadlineTick, ///< wall-clock budget since the last solve elapsed
  kFlush,        ///< explicit flush() at stream end
};

[[nodiscard]] const char* to_string(TriggerKind kind) noexcept;

struct TriggerConfig {
  /// Re-solve every N appended steps; 0 disables.
  std::size_t every_steps = 0;
  /// Re-solve when a fresh step's cross-task private-demand sum exceeds
  /// `spike_factor` x the maximum sum over the trailing `window` steps
  /// before it (an O(1) range-max pre-check on the incremental stats).
  /// The baseline tracks the *current* trailing window, not the last
  /// solved one — a frozen baseline goes stale after a quiet stretch and
  /// turns every post-lull demand step into a re-solve storm.  0 disables.
  double spike_factor = 0.0;
  /// Absolute floor for the spike trigger: a fresh step's demand sum below
  /// this never fires, however small the baseline (a zero baseline would
  /// otherwise fire on any positive sum).
  std::uint32_t spike_min_demand = 1;
  /// Re-solve when any task's online rent-or-buy controller performs a
  /// (non-initial) hyperreconfiguration at the appended step.
  bool rent_or_buy = false;
  online::RentOrBuyConfig rent_or_buy_config;
  /// Re-solve when this much wall time passed since the last solve and at
  /// least one new step arrived; 0 disables.
  std::chrono::milliseconds tick{0};
};

struct StreamingConfig {
  /// Solve window: each re-solve covers the last `window` steps (all steps
  /// while the trace is shorter).  Must be at least 1.
  std::size_t window = 256;
  TriggerConfig trigger;
  /// Portfolio used for the window solves.  Runs serially inside the
  /// engine (windows are small; batch jobs are the unit of parallelism).
  engine::PortfolioConfig portfolio;
  /// Optional solve cache: window instances are memoized by content
  /// fingerprint (repeated windows across streams hit), and its
  /// window-shape warm-start index seeds solves that have no previous
  /// window to inherit from.
  std::shared_ptr<cache::SolveCache> cache;
  /// Seed each re-solve with the previous window's schedule (falling back
  /// to the cache's same-shape incumbent).
  bool warm_start = true;
  /// Allow the cache's shape-keyed warm-start index as the fallback seed
  /// when there is no published schedule yet.  The StreamMultiplexer turns
  /// this off: an index seed depends on what OTHER streams solved recently,
  /// and a fleet-tenant stream must publish bit-identically to a solo run.
  bool cache_warm_start = true;
  /// Incremental-stats bulk-append fallback threshold.
  TraceBuilderConfig builder;
  /// Engine-wide cancellation: a fired token makes re-solves no-ops (the
  /// previously published schedule stays intact and valid).
  CancelToken cancel;
};

/// One window re-solve, for diagnostics and io/result_json v3.
struct WindowReport {
  std::size_t index = 0;  ///< re-solve ordinal, 0-based
  TriggerKind trigger = TriggerKind::kInitial;
  std::size_t window_lo = 0;  ///< solved steps [window_lo, window_hi)
  std::size_t window_hi = 0;
  bool ok = false;
  std::string error;   ///< exception text when !ok
  /// Portfolio member behind the window; "cache" on a verified cache hit;
  /// "coalesced" when the window piggybacked on another stream's in-flight
  /// solve of the same (instance, seed) without running a member itself.
  std::string winner;
  /// How the attached solve cache satisfied the window (nullopt when no
  /// cache was attached or the solve failed before the lookup).
  std::optional<cache::CacheOutcome> cache;
  bool warm_started = false;
  std::chrono::microseconds elapsed{0};  ///< window solve wall time
  Cost window_cost = 0;     ///< portfolio best over the window alone
  Cost published_cost = 0;  ///< spliced full-schedule cost after publishing
  /// Boundaries frozen from the stable prefix (summed over tasks).
  std::size_t splice_prefix_boundaries = 0;
};

/// Grows a synchronized multi-task trace step-by-step and keeps a valid
/// published schedule over everything seen so far, re-solving a sliding
/// window on configurable triggers.  Not thread-safe; one stream per engine.
class StreamingEngine {
 public:
  StreamingEngine(MachineSpec machine, EvalOptions options,
                  StreamingConfig config = {});

  /// Appends one synchronized step (requirement j goes to task j), runs the
  /// trigger checks, and re-solves the window when one fires.  Returns true
  /// iff a window re-solve ran (successfully or not — see windows().back()).
  bool append_step(std::vector<ContextRequirement> step);

  /// Forces a final window re-solve when steps arrived since the last one.
  /// Returns true iff a re-solve ran.
  bool flush();

  // Deferred-sequencing hooks for external drivers (the StreamMultiplexer
  // runs window re-solves as pool jobs instead of inline).  The engine
  // stays single-sequenced: the driver must not interleave other mutations
  // between a latched trigger and its resolve_pending() call — that is
  // exactly the state the solo append_step path would have solved, which
  // is what makes a multiplexed stream bit-identical to a solo one.

  /// append_step, except a fired trigger is latched and returned instead
  /// of re-solving inline.  Requires no trigger already pending.
  std::optional<TriggerKind> append_step_deferred(
      std::vector<ContextRequirement> step);

  /// flush(), deferred: latches kFlush when steps are pending since the
  /// last re-solve; returns the latched trigger or nullopt when idle.
  std::optional<TriggerKind> request_flush();

  /// The trigger latched by the deferred hooks, if any.
  [[nodiscard]] std::optional<TriggerKind> pending_trigger() const noexcept {
    return pending_trigger_;
  }

  /// Runs the latched window re-solve under `cancel` (the driver links its
  /// per-job token to the engine-wide one) and clears the latch.
  void resolve_pending(const CancelToken& cancel);

  [[nodiscard]] std::size_t steps() const noexcept { return stats_.steps(); }
  [[nodiscard]] const MultiTaskTrace& trace() const noexcept {
    return stats_.trace();
  }
  [[nodiscard]] const TraceBuilderStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const MachineSpec& machine() const noexcept {
    return machine_;
  }

  /// The published schedule; covers [0, steps()) and validates (shape-wise)
  /// once at least one step has been appended.
  [[nodiscard]] const MultiTaskSchedule& schedule() const noexcept {
    return published_;
  }

  /// Published schedule evaluated over the full trace seen so far (reuses
  /// the breakdown computed by the last re-solve when no steps arrived
  /// since).  On machines with private-global resources the §4.2 evaluator
  /// additionally enforces per-block quota feasibility: the engine forces a
  /// repair re-solve (TriggerKind::kQuotaRepair) the moment the growing
  /// last block overflows the pool, but while that repair window itself is
  /// infeasible for the solver line-up (every standard solver keeps one
  /// global block per instance) this call throws, exactly as an offline
  /// solve of the same trace would.
  [[nodiscard]] MTSolution current_solution() const;

  /// One report per window re-solve, in order.
  [[nodiscard]] const std::vector<WindowReport>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] std::size_t resolve_count() const noexcept {
    return windows_.size();
  }

 private:
  /// Shared append path: validates, feeds the controllers and stats, runs
  /// the trigger checks in priority order; returns the first firing trigger.
  std::optional<TriggerKind> ingest(std::vector<ContextRequirement> step);
  void resolve_window(TriggerKind trigger, const CancelToken& cancel);
  [[nodiscard]] MultiTaskTrace window_trace(std::size_t lo,
                                            std::size_t hi) const;
  [[nodiscard]] MultiTaskSchedule warm_seed(std::size_t lo,
                                            std::size_t hi) const;
  [[nodiscard]] MultiTaskSchedule splice(const MultiTaskSchedule& window,
                                         std::size_t lo, std::size_t hi,
                                         std::size_t* prefix_boundaries) const;

  MachineSpec machine_;
  EvalOptions options_;
  StreamingConfig config_;

  TraceBuilderStats stats_;
  MultiTaskSchedule published_;  ///< covers [0, steps()) once non-empty
  /// Breakdown of published_ over the full trace, computed by the last
  /// successful re-solve; cleared by every append (the extended schedule
  /// has a different cost).  Saves current_solution() a full re-evaluation
  /// right after a re-solve — the flush-then-report path of BatchEngine.
  std::optional<CostBreakdown> published_breakdown_;
  std::vector<WindowReport> windows_;
  std::vector<online::RentOrBuyScheduler> rent_or_buy_;

  std::size_t pending_ = 0;  ///< steps appended since the last re-solve ran
  std::optional<TriggerKind> pending_trigger_;  ///< deferred-mode latch
  /// Tick-trigger baseline: armed on first ingest (an engine may be built
  /// long before traffic arrives), re-armed by every successful re-solve.
  std::chrono::steady_clock::time_point last_solve_{};
};

}  // namespace hyperrec::streaming
