// Fleet-scale concurrent streaming: N StreamingEngines multiplexed over
// the shared thread pool.
//
// PR 5's StreamingEngine serves ONE growing trace; production (and the
// online-multitasking line of related work) is multi-tenant — thousands of
// independent traces streaming at once, sharing one solve cache so
// same-window tenants coalesce onto a single solve.  The multiplexer lifts
// the single-stream design to the fleet without touching its invariants:
//
//   producers ──► append_step(stream, step) ─┐   (any thread, non-blocking)
//                                            ▼
//        shard queues (stream id % shards): FIFO per stream,
//        parallel across shards, one drain job per active shard
//                                            ▼
//        engine.append_step_deferred() on the shard lane — a fired trigger
//        latches instead of solving inline; the stream parks further ops
//                                            ▼
//        window re-solve as a cancellable pool job (CancelToken linked to
//        the fleet token), against the ONE shared SolveCache
//                                            ▼
//        epoch-published StreamSnapshot per stream: built entirely off-lock,
//        swapped in under a publication mutex held only for the pointer
//        exchange — readers never wait on solver work, never see a torn
//        schedule
//
// Bit-identity: a multiplexed stream publishes exactly the schedule its
// solo StreamingEngine run would.  Three mechanisms make that hold under
// a shared cache: ops are FIFO per stream; appends are parked while the
// stream's re-solve is in flight (the job sees the trace exactly as it was
// at the trigger); and window cache keys mix in the warm seed while the
// shape-index fallback is disabled (cache_warm_start = false), so a cache
// hit or coalesced wait can only ever return the solution this stream
// would have computed itself.
//
// Failure handling follows the Xenomai switchtest idiom: a fault on a
// stream's lane never takes the fleet down — the stream is poisoned (later
// ops are dropped and counted) and the FIRST failure's identifying
// information (stream id, step, error) is latched for the harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/solve_cache.hpp"
#include "streaming/streaming_engine.hpp"
#include "support/thread_annotations.hpp"
#include "support/thread_pool.hpp"

namespace hyperrec::streaming {

struct MultiplexerConfig {
  /// Shard lanes; stream id % shards picks the lane.  Clamped to [1, 256].
  std::size_t shards = 4;
  /// Worker pool for drain and re-solve jobs; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Template config for every opened stream.  Its `cache` member is
  /// replaced by the shared fleet cache, `cache_warm_start` is forced off
  /// (fleet determinism — see the header comment) and `cancel` is linked
  /// into the fleet token.
  StreamingConfig stream;
  /// The ONE cache shared by every engine; nullptr = the multiplexer
  /// creates its own (stream.cache is used as the shared one when set).
  std::shared_ptr<cache::SolveCache> cache;
  /// Fleet-wide cancellation: re-solve jobs fail fast (published schedules
  /// stay intact), appends keep accounting.
  CancelToken cancel;
};

/// Immutable per-stream publication; the snapshot is assembled off-lock and
/// swapped in under a mutex held only for the pointer exchange, so a read
/// costs one refcounted pointer copy and never waits on a re-solve.
struct StreamSnapshot {
  std::uint64_t epoch = 0;     ///< publication ordinal for this stream, from 1
  std::size_t steps = 0;       ///< steps covered by `schedule`
  std::size_t resolves = 0;    ///< window re-solves behind this snapshot
  MultiTaskSchedule schedule;  ///< covers [0, steps); validates once non-empty
  /// Full-trace cost at the last successful re-solve (appends since then
  /// extended the schedule, so the live cost may differ); nullopt before
  /// the first successful window.
  std::optional<Cost> published_cost;
};

/// First-failure capture: which stream faulted first, at which step, why.
struct FirstFailure {
  std::size_t stream = 0;
  std::size_t step = 0;  ///< steps ingested by the stream when it faulted
  std::string what;
};

/// Fleet-wide counters (monotonic; exact once drained).
struct FleetStats {
  std::size_t streams = 0;
  std::uint64_t accepted = 0;       ///< appends accepted into shard queues
  std::uint64_t applied = 0;        ///< appends applied to engines
  std::uint64_t resolves = 0;       ///< window re-solve jobs completed
  std::uint64_t failed_windows = 0; ///< completed windows with ok == false
  std::uint64_t dropped = 0;        ///< ops discarded on poisoned streams
  std::uint64_t publications = 0;   ///< snapshot swaps across the fleet
  std::uint64_t failures = 0;       ///< lane faults (streams poisoned)
  cache::SolveCacheStats cache;     ///< the shared cache's counters
};

/// One row of the per-stream fleet summary (io/result_json "fleet" object).
struct StreamSummary {
  std::size_t id = 0;
  std::size_t steps = 0;     ///< steps applied to the engine
  std::size_t resolves = 0;  ///< window re-solves completed
  std::uint64_t failed_windows = 0;
  std::uint64_t epoch = 0;   ///< last published snapshot epoch
  bool poisoned = false;
  std::optional<Cost> published_cost;
};

/// Multiplexes many StreamingEngines over the thread pool.  append_step /
/// flush / snapshot / stream_summaries are safe from any thread; drain()
/// quiesces the fleet (call it from a non-pool thread, after producers
/// stopped).  engine() reads engine state and requires a quiesced fleet.
class StreamMultiplexer {
 public:
  explicit StreamMultiplexer(MultiplexerConfig config = {});
  ~StreamMultiplexer();  ///< drains before tearing down

  StreamMultiplexer(const StreamMultiplexer&) = delete;
  StreamMultiplexer& operator=(const StreamMultiplexer&) = delete;

  /// Registers a stream and returns its id (dense, from 0).  Thread-safe.
  std::size_t open_stream(MachineSpec machine, EvalOptions options = {});

  /// Enqueues one synchronized step for `stream`.  FIFO within the stream,
  /// parallel across shards; returns immediately (re-solves never run on
  /// the producer's thread).
  void append_step(std::size_t stream, std::vector<ContextRequirement> step);

  /// Enqueues a flush for `stream` (a final re-solve over pending steps).
  void flush(std::size_t stream);

  /// Enqueues a flush for every stream.
  void flush_all();

  /// Blocks until every enqueued op and every scheduled re-solve finished.
  /// Producers must have stopped; never call from a pool worker thread.
  void drain();

  /// The stream's latest publication — lock-free, never blocks on writers;
  /// nullptr before the first publication.
  [[nodiscard]] std::shared_ptr<const StreamSnapshot> snapshot(
      std::size_t stream) const;

  [[nodiscard]] std::size_t stream_count() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const std::shared_ptr<cache::SolveCache>& cache()
      const noexcept {
    return cache_;
  }

  /// The stream's engine, for window reports and final solutions.  Only
  /// valid on a quiesced fleet (after drain(), before new ops).
  [[nodiscard]] const StreamingEngine& engine(std::size_t stream) const;

  [[nodiscard]] FleetStats fleet_stats() const;
  [[nodiscard]] std::optional<FirstFailure> first_failure() const;

  /// Per-stream rows for the fleet summary.  Safe on a live fleet: every
  /// field comes from an atomic counter, the published snapshot or the
  /// owning shard's lane state (taken under its mutex), so concurrent rows
  /// are merely slightly stale, never torn.
  [[nodiscard]] std::vector<StreamSummary> stream_summaries() const;

 private:
  struct Op {
    enum class Kind : std::uint8_t { kAppend, kFlush };
    Kind kind = Kind::kAppend;
    std::vector<ContextRequirement> step;
  };

  struct Stream {
    std::size_t id = 0;
    std::unique_ptr<StreamingEngine> engine;  ///< touched only on its lane
    /// Epoch-published schedule; written by the single active lane/job,
    /// read by anyone.  `publish_mutex` guards ONLY the pointer swap/copy
    /// (never snapshot construction), so readers pay a pointer copy, not a
    /// wait on solver work.  (std::atomic<shared_ptr> would express this
    /// directly, but libstdc++'s lock-bit protocol is opaque to TSan.)
    mutable Mutex publish_mutex{"StreamMultiplexer::publish"};
    std::shared_ptr<const StreamSnapshot> published
        GUARDED_BY(publish_mutex);
    // Monotonic per-stream counters (relaxed atomics; exact once drained).
    std::atomic<std::uint64_t> applied{0};
    std::atomic<std::uint64_t> resolves{0};
    std::atomic<std::uint64_t> failed_windows{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  /// Per-stream lane bookkeeping, OWNED by the stream's shard so every
  /// field is expressibly guarded by that shard's mutex (a flag living on
  /// Stream but guarded by "the owning shard's mutex" is a cross-object
  /// convention neither Clang's analysis nor a reviewer can check).
  struct LaneState {
    std::deque<Op> parked;   ///< ops held while a re-solve job is in flight
    bool resolving = false;  ///< a re-solve pool job owns the engine
    bool poisoned = false;   ///< lane fault: later ops are dropped
  };

  struct Shard {
    /// One lock class for all shards — lanes of one family never nest.
    Mutex mutex{"StreamMultiplexer::shard"};
    std::deque<std::pair<Stream*, Op>> queue GUARDED_BY(mutex);
    bool active GUARDED_BY(mutex) =
        false;  ///< a drain job for this shard is scheduled/running
    std::unordered_map<std::size_t, LaneState> lanes GUARDED_BY(mutex);

    LaneState& lane(std::size_t stream_id) REQUIRES(mutex) {
      return lanes[stream_id];
    }
  };

  [[nodiscard]] std::shared_ptr<Stream> stream_ptr(std::size_t id) const;
  void enqueue(std::size_t id, Op op);
  void drain_shard(Shard& shard);
  void apply(Shard& shard, Stream& stream, Op op);
  void run_resolve(Shard& shard, Stream& stream);
  void publish(Stream& stream);
  void poison(Shard& shard, Stream& stream, const char* what);
  void finish_unit();

  MultiplexerConfig config_;
  ThreadPool* pool_ = nullptr;
  std::shared_ptr<cache::SolveCache> cache_;
  CancelToken cancel_;

  mutable Mutex streams_mutex_{"StreamMultiplexer::streams"};
  std::vector<std::shared_ptr<Stream>> streams_ GUARDED_BY(streams_mutex_);
  std::vector<std::unique_ptr<Shard>> shards_;  ///< immutable after ctor

  /// Units of outstanding work: every accepted op and every scheduled
  /// re-solve job counts one from acceptance to completion.
  std::atomic<std::uint64_t> inflight_{0};
  Mutex drain_mutex_{"StreamMultiplexer::drain"};
  CondVar drain_cv_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> publications_{0};
  std::atomic<std::uint64_t> failures_{0};
  mutable Mutex failure_mutex_{"StreamMultiplexer::failure"};
  std::optional<FirstFailure> first_failure_ GUARDED_BY(failure_mutex_);
};

}  // namespace hyperrec::streaming
