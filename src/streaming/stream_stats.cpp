#include "streaming/stream_stats.hpp"

#include <algorithm>

#include "support/bitset_kernels.hpp"
#include "support/ensure.hpp"

namespace hyperrec::streaming {

namespace {

constexpr std::size_t kNoSupport = static_cast<std::size_t>(-1);

}  // namespace

// --- TaskStreamStats ------------------------------------------------------

TaskStreamStats::TaskStreamStats(std::size_t universe)
    : universe_(universe),
      words_((universe + DynamicBitset::kWordBits - 1) /
             DynamicBitset::kWordBits) {
  log2_.push_back(0);  // index 0 unused, mirrors trace_stats' build_log2
  support_index_.assign(universe_, kNoSupport);
}

TaskStreamStats::TaskStreamStats(const TaskTrace& trace)
    : TaskStreamStats(trace.local_universe()) {
  const std::size_t n = trace.size();
  if (n == 0) return;

  // log2 table in one pass.
  log2_.reserve(n + 1);
  std::uint8_t k = 0;
  for (std::size_t len = 1; len <= n; ++len) {
    if ((std::size_t{2} << k) <= len) ++k;
    log2_.push_back(k);
  }
  steps_ = n;

  // Sparse-table levels, each built from the previous in one pass.
  const std::size_t levels = std::size_t{log2_[n]} + 1;
  union_levels_.resize(levels);
  priv_levels_.resize(levels);
  union_levels_[0].assign(n * words_, 0);
  priv_levels_[0].resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ContextRequirement& req = trace.at(i);
    std::copy(req.local.words().begin(), req.local.words().end(),
              union_levels_[0].begin() + static_cast<std::ptrdiff_t>(i * words_));
    priv_levels_[0][i] = req.private_demand;
  }
  for (std::size_t level = 1; level < levels; ++level) {
    const std::size_t half = std::size_t{1} << (level - 1);
    const std::size_t rows = n - (std::size_t{1} << level) + 1;
    union_levels_[level].assign(rows * words_, 0);
    priv_levels_[level].resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const DynamicBitset::Word* a =
          union_levels_[level - 1].data() + i * words_;
      const DynamicBitset::Word* b =
          union_levels_[level - 1].data() + (i + half) * words_;
      DynamicBitset::Word* out = union_levels_[level].data() + i * words_;
      kernels::or_words(out, a, b, words_);
      priv_levels_[level][i] = std::max(priv_levels_[level - 1][i],
                                        priv_levels_[level - 1][i + half]);
    }
  }

  // Support in first-appearance order (matches the append path exactly),
  // then one prefix pass per column.
  for (std::size_t i = 0; i < n; ++i) {
    trace.at(i).local.for_each_set([this](std::size_t b) {
      if (support_index_[b] == kNoSupport) {
        support_index_[b] = support_.size();
        support_.push_back(b);
      }
    });
  }
  presence_.resize(support_.size());
  for (std::size_t si = 0; si < support_.size(); ++si) {
    std::vector<std::uint32_t>& column = presence_[si];
    column.resize(n + 1);
    column[0] = 0;
    const std::size_t b = support_[si];
    for (std::size_t i = 0; i < n; ++i) {
      column[i + 1] = column[i] + (trace.at(i).local.test(b) ? 1u : 0u);
    }
  }
}

void TaskStreamStats::append(const ContextRequirement& req) {
  HYPERREC_ENSURE(req.local.size() == universe_,
                  "requirement universe differs from stream universe");
  const std::size_t n = steps_;  // new step index; new size is n + 1
  const std::size_t size = n + 1;

  // log2_[size] from log2_[size - 1].
  if (size == 1) {
    log2_.push_back(0);
  } else {
    const std::uint8_t prev = log2_[size - 1];
    log2_.push_back((std::size_t{2} << prev) <= size
                        ? static_cast<std::uint8_t>(prev + 1)
                        : prev);
  }

  // One new row per level: level k gains row size − 2^k covering
  // [size − 2^k, size), OR/max of the two level-(k−1) rows it straddles.
  // Level k−1 already holds its row for this append (ascending k), and its
  // last row — index size − 2^(k−1) — is exactly the second source.
  const std::size_t levels = std::size_t{log2_[size]} + 1;
  if (union_levels_.size() < levels) {
    union_levels_.resize(levels);
    priv_levels_.resize(levels);
  }
  union_levels_[0].insert(union_levels_[0].end(), req.local.words().begin(),
                          req.local.words().end());
  priv_levels_[0].push_back(req.private_demand);
  for (std::size_t k = 1; k < levels; ++k) {
    const std::size_t half = std::size_t{1} << (k - 1);
    const std::size_t i = size - (std::size_t{1} << k);
    const std::size_t old_words = union_levels_[k].size();
    union_levels_[k].resize(old_words + words_);
    const DynamicBitset::Word* a = union_levels_[k - 1].data() + i * words_;
    const DynamicBitset::Word* b =
        union_levels_[k - 1].data() + (i + half) * words_;
    DynamicBitset::Word* out = union_levels_[k].data() + old_words;
    kernels::or_words(out, a, b, words_);
    priv_levels_[k].push_back(
        std::max(priv_levels_[k - 1][i], priv_levels_[k - 1][i + half]));
  }

  // Presence columns: new switches join with a zero-padded history, then
  // every support column extends by one prefix entry.
  req.local.for_each_set([this, n](std::size_t b) {
    if (support_index_[b] == kNoSupport) {
      support_index_[b] = support_.size();
      support_.push_back(b);
      presence_.emplace_back(n + 1, 0u);
    }
  });
  for (std::size_t si = 0; si < support_.size(); ++si) {
    std::vector<std::uint32_t>& column = presence_[si];
    column.push_back(column.back() +
                     (req.local.test(support_[si]) ? 1u : 0u));
  }

  steps_ = size;
}

TaskStreamStats::RowPair TaskStreamStats::union_rows_for(std::size_t lo,
                                                         std::size_t hi) const {
  const std::size_t k = log2_[hi - lo];
  const std::size_t span = std::size_t{1} << k;
  return {union_levels_[k].data() + lo * words_,
          union_levels_[k].data() + (hi - span) * words_};
}

DynamicBitset TaskStreamStats::local_union(std::size_t lo,
                                           std::size_t hi) const {
  check_range(lo, hi);
  if (lo == hi || words_ == 0) return DynamicBitset(universe_);
  const RowPair rows = union_rows_for(lo, hi);
  return DynamicBitset::from_or_words(universe_, rows.a, rows.b, words_);
}

std::size_t TaskStreamStats::local_union_count(std::size_t lo,
                                               std::size_t hi) const {
  check_range(lo, hi);
  if (lo == hi || words_ == 0) return 0;
  const RowPair rows = union_rows_for(lo, hi);
  return kernels::or_popcount(rows.a, rows.b, words_);
}

std::uint32_t TaskStreamStats::max_private_demand(std::size_t lo,
                                                  std::size_t hi) const {
  check_range(lo, hi);
  if (lo == hi) return 0;
  const std::size_t k = log2_[hi - lo];
  const std::size_t span = std::size_t{1} << k;
  return std::max(priv_levels_[k][lo], priv_levels_[k][hi - span]);
}

bool TaskStreamStats::switch_present(std::size_t b, std::size_t lo,
                                     std::size_t hi) const {
  return switch_step_count(b, lo, hi) > 0;
}

std::uint32_t TaskStreamStats::switch_step_count(std::size_t b, std::size_t lo,
                                                 std::size_t hi) const {
  check_range(lo, hi);
  HYPERREC_ENSURE(b < universe_, "switch index out of range");
  const std::size_t si = support_index_[b];
  if (si == kNoSupport) return 0;
  return presence_[si][hi] - presence_[si][lo];
}

void TaskStreamStats::assert_consistent_with(const TaskTraceStats& full) const {
  HYPERREC_ENSURE(steps_ == full.steps(),
                  "stream/rebuild step count divergence");
  HYPERREC_ENSURE(universe_ == full.universe(),
                  "stream/rebuild universe divergence");

  // Support as a set (the stream discovers switches in appearance order,
  // the full build lists them ascending).
  std::vector<std::size_t> sorted = support_;
  std::sort(sorted.begin(), sorted.end());
  HYPERREC_ENSURE(sorted == full.support(),
                  "stream/rebuild support divergence");

  // Power-of-two ranges read exactly one sparse-table row on each side, so
  // this loop compares every row of every level bit-identically.
  for (std::size_t k = 0; (std::size_t{1} << k) <= steps_; ++k) {
    const std::size_t span = std::size_t{1} << k;
    for (std::size_t i = 0; i + span <= steps_; ++i) {
      HYPERREC_ENSURE(local_union(i, i + span) == full.local_union(i, i + span),
                      "stream/rebuild union row divergence");
      HYPERREC_ENSURE(max_private_demand(i, i + span) ==
                          full.max_private_demand(i, i + span),
                      "stream/rebuild private-demand row divergence");
    }
  }

  // Every presence prefix of every switch (non-support switches must read 0
  // on both sides).
  for (std::size_t b = 0; b < universe_; ++b) {
    for (std::size_t i = 0; i <= steps_; ++i) {
      HYPERREC_ENSURE(switch_step_count(b, 0, i) ==
                          full.switch_step_count(b, 0, i),
                      "stream/rebuild presence divergence");
    }
  }
}

// --- TraceBuilderStats ----------------------------------------------------

TraceBuilderStats::TraceBuilderStats(const std::vector<std::size_t>& universes,
                                     TraceBuilderConfig config)
    : config_(config) {
  HYPERREC_ENSURE(!universes.empty(), "trace builder needs at least one task");
  log2_.push_back(0);
  for (const std::size_t universe : universes) {
    trace_.add_task(TaskTrace(universe));
    tasks_.emplace_back(universe);
  }
}

TraceBuilderStats::TraceBuilderStats(MultiTaskTrace trace,
                                     TraceBuilderConfig config)
    : config_(config), trace_(std::move(trace)) {
  HYPERREC_ENSURE(trace_.task_count() > 0,
                  "trace builder needs at least one task");
  HYPERREC_ENSURE(trace_.synchronized(),
                  "trace builder requires a synchronized trace");
  rebuild_all();
  rebuilds_ = 0;  // the adopting build is construction, not a fallback
}

void TraceBuilderStats::ingest_step_views(
    const std::vector<ContextRequirement>& step) {
  // Validate every requirement before mutating ANY view: a mismatch
  // surfacing after task 0 appended would leave the per-task tables shifted
  // against each other with no rollback — silently wrong stats for a caller
  // that catches the exception and keeps going.
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    HYPERREC_ENSURE(step[j].local.size() == tasks_[j].universe(),
                    "requirement universe differs from its task's universe");
  }
  std::uint64_t sum = 0;
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    tasks_[j].append(step[j]);
    sum += step[j].private_demand;
  }

  const std::size_t size = steps_ + 1;
  if (size == 1) {
    log2_.push_back(0);
  } else {
    const std::uint8_t prev = log2_[size - 1];
    log2_.push_back((std::size_t{2} << prev) <= size
                        ? static_cast<std::uint8_t>(prev + 1)
                        : prev);
  }
  demand_sums_.push_back(sum);
  const std::size_t levels = std::size_t{log2_[size]} + 1;
  if (demand_levels_.size() < levels) demand_levels_.resize(levels);
  demand_levels_[0].push_back(sum);
  for (std::size_t k = 1; k < levels; ++k) {
    const std::size_t half = std::size_t{1} << (k - 1);
    const std::size_t i = size - (std::size_t{1} << k);
    demand_levels_[k].push_back(
        std::max(demand_levels_[k - 1][i], demand_levels_[k - 1][i + half]));
  }
  steps_ = size;
}

void TraceBuilderStats::append_step(std::vector<ContextRequirement> step) {
  HYPERREC_ENSURE(step.size() == tasks_.size(),
                  "append_step needs exactly one requirement per task");
  ingest_step_views(step);
  trace_.append_step(std::move(step));
}

void TraceBuilderStats::append_steps(
    std::vector<std::vector<ContextRequirement>> steps) {
  if (config_.rebuild_threshold > 0 &&
      steps.size() >= config_.rebuild_threshold) {
    // Validate the whole chunk before the first trace mutation — a throw
    // halfway through would leave trace_ ahead of the (not yet rebuilt)
    // stats views with no rollback.
    for (const std::vector<ContextRequirement>& step : steps) {
      HYPERREC_ENSURE(step.size() == tasks_.size(),
                      "append_steps needs exactly one requirement per task");
      for (std::size_t j = 0; j < step.size(); ++j) {
        HYPERREC_ENSURE(step[j].local.size() == tasks_[j].universe(),
                        "requirement universe differs from its task's "
                        "universe");
      }
    }
    for (std::vector<ContextRequirement>& step : steps) {
      trace_.append_step(std::move(step));
    }
    rebuild_all();
    ++rebuilds_;
    return;
  }
  for (std::vector<ContextRequirement>& step : steps) {
    append_step(std::move(step));
  }
}

void TraceBuilderStats::rebuild_all() {
  steps_ = trace_.task(0).size();
  tasks_.clear();
  tasks_.reserve(trace_.task_count());
  for (std::size_t j = 0; j < trace_.task_count(); ++j) {
    tasks_.emplace_back(trace_.task(j));
  }

  log2_.assign(1, 0);
  std::uint8_t k = 0;
  for (std::size_t len = 1; len <= steps_; ++len) {
    if ((std::size_t{2} << k) <= len) ++k;
    log2_.push_back(k);
  }
  demand_sums_.assign(steps_, 0);
  for (std::size_t j = 0; j < trace_.task_count(); ++j) {
    for (std::size_t i = 0; i < steps_; ++i) {
      demand_sums_[i] += trace_.task(j).at(i).private_demand;
    }
  }
  demand_levels_.clear();
  if (steps_ == 0) return;
  const std::size_t levels = std::size_t{log2_[steps_]} + 1;
  demand_levels_.resize(levels);
  demand_levels_[0] = demand_sums_;
  for (std::size_t level = 1; level < levels; ++level) {
    const std::size_t half = std::size_t{1} << (level - 1);
    const std::size_t rows = steps_ - (std::size_t{1} << level) + 1;
    demand_levels_[level].resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      demand_levels_[level][i] = std::max(demand_levels_[level - 1][i],
                                          demand_levels_[level - 1][i + half]);
    }
  }
}

std::uint64_t TraceBuilderStats::step_demand_sum(std::size_t i) const {
  HYPERREC_ENSURE(i < demand_sums_.size(), "step out of range");
  return demand_sums_[i];
}

std::uint64_t TraceBuilderStats::max_step_demand_sum(std::size_t lo,
                                                     std::size_t hi) const {
  HYPERREC_ENSURE(lo <= hi && hi <= demand_sums_.size(),
                  "stats query range out of bounds");
  if (lo == hi) return 0;
  const std::size_t k = log2_[hi - lo];
  const std::size_t span = std::size_t{1} << k;
  return std::max(demand_levels_[k][lo], demand_levels_[k][hi - span]);
}

void TraceBuilderStats::assert_consistent_with_rebuild() const {
  const MultiTaskTraceStats full(trace_);
  HYPERREC_ENSURE(full.task_count() == tasks_.size(),
                  "stream/rebuild task count divergence");
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    tasks_[j].assert_consistent_with(full.task(j));
  }
  for (std::size_t i = 0; i < steps_; ++i) {
    HYPERREC_ENSURE(step_demand_sum(i) == full.step_demand_sum(i),
                    "stream/rebuild demand sum divergence");
  }
  for (std::size_t k = 0; (std::size_t{1} << k) <= steps_; ++k) {
    const std::size_t span = std::size_t{1} << k;
    for (std::size_t i = 0; i + span <= steps_; ++i) {
      HYPERREC_ENSURE(max_step_demand_sum(i, i + span) ==
                          full.max_step_demand_sum(i, i + span),
                      "stream/rebuild demand range-max divergence");
    }
  }
}

}  // namespace hyperrec::streaming
