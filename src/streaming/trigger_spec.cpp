#include "streaming/trigger_spec.hpp"

#include <charconv>
#include <cstdlib>
#include <limits>
#include <vector>

#include "support/ensure.hpp"

namespace hyperrec::streaming {

namespace {

/// Full-consumption unsigned parse: every character of `text` must be a
/// digit of the value, no sign, no suffix, no empty string.
std::uint64_t parse_u64(const std::string& text, const std::string& item) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  HYPERREC_ENSURE(!text.empty() && ec == std::errc{} && ptr == last,
                  "malformed trigger value in '" + item +
                      "': expected a non-negative integer");
  return value;
}

/// Full-consumption decimal parse; must be finite and non-negative.
double parse_decimal(const std::string& text, const std::string& item) {
  HYPERREC_ENSURE(!text.empty(), "malformed trigger value in '" + item +
                                     "': expected a decimal number");
  // strtod also accepts C99 hex floats ("0x1p4") — an accidental hex
  // prefix or exponent in a config almost never means what it parses to,
  // so restrict the grammar to plain decimals up front.
  HYPERREC_ENSURE(text.find_first_of("xXpP") == std::string::npos,
                  "malformed trigger value in '" + item +
                      "': hexadecimal floats are not accepted");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  HYPERREC_ENSURE(end == text.c_str() + text.size() &&
                      value >= 0.0 &&
                      value <= std::numeric_limits<double>::max(),
                  "malformed trigger value in '" + item +
                      "': expected a non-negative decimal number");
  return value;
}

}  // namespace

TriggerConfig parse_trigger_spec(const std::string& spec) {
  HYPERREC_ENSURE(!spec.empty(), "empty trigger spec");
  TriggerConfig trigger;
  bool seen_steps = false;
  bool seen_spike = false;
  bool seen_spike_min = false;
  bool seen_rent_or_buy = false;
  bool seen_tick = false;

  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string item = spec.substr(begin, end - begin);
    HYPERREC_ENSURE(!item.empty(),
                    "empty trigger item in spec '" + spec + "'");

    const std::size_t colon = item.find(':');
    const bool has_value = colon != std::string::npos;
    const std::string kind = item.substr(0, colon);
    const std::string value = has_value ? item.substr(colon + 1) : "";

    if (kind == "steps") {
      HYPERREC_ENSURE(!seen_steps, "duplicate trigger key in '" + item + "'");
      HYPERREC_ENSURE(has_value, "trigger 'steps' needs a value (steps:N)");
      seen_steps = true;
      const std::uint64_t steps = parse_u64(value, item);
      HYPERREC_ENSURE(steps > 0, "trigger value in '" + item +
                                     "' must be positive (to disable the "
                                     "step trigger, omit the key)");
      trigger.every_steps = static_cast<std::size_t>(steps);
    } else if (kind == "spike") {
      HYPERREC_ENSURE(!seen_spike, "duplicate trigger key in '" + item + "'");
      HYPERREC_ENSURE(has_value, "trigger 'spike' needs a value (spike:F)");
      seen_spike = true;
      trigger.spike_factor = parse_decimal(value, item);
      HYPERREC_ENSURE(trigger.spike_factor > 0.0,
                      "trigger value in '" + item +
                          "' must be positive (to disable the spike "
                          "trigger, omit the key)");
    } else if (kind == "spike-min") {
      HYPERREC_ENSURE(!seen_spike_min,
                      "duplicate trigger key in '" + item + "'");
      HYPERREC_ENSURE(has_value,
                      "trigger 'spike-min' needs a value (spike-min:D)");
      seen_spike_min = true;
      const std::uint64_t demand = parse_u64(value, item);
      HYPERREC_ENSURE(demand <= std::numeric_limits<std::uint32_t>::max(),
                      "trigger value out of range in '" + item + "'");
      trigger.spike_min_demand = static_cast<std::uint32_t>(demand);
    } else if (kind == "rent-or-buy") {
      HYPERREC_ENSURE(!seen_rent_or_buy,
                      "duplicate trigger key in '" + item + "'");
      HYPERREC_ENSURE(!has_value,
                      "trigger 'rent-or-buy' is a flag and takes no value "
                      "(got '" + item + "')");
      seen_rent_or_buy = true;
      trigger.rent_or_buy = true;
    } else if (kind == "tick") {
      HYPERREC_ENSURE(!seen_tick, "duplicate trigger key in '" + item + "'");
      HYPERREC_ENSURE(has_value, "trigger 'tick' needs a value (tick:MS)");
      seen_tick = true;
      const std::uint64_t ms = parse_u64(value, item);
      HYPERREC_ENSURE(ms > 0, "trigger value in '" + item +
                                  "' must be positive (to disable the "
                                  "tick trigger, omit the key)");
      HYPERREC_ENSURE(
          ms <= static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max() / 1000000),
          "trigger value out of range in '" + item + "'");
      trigger.tick = std::chrono::milliseconds{static_cast<std::int64_t>(ms)};
    } else {
      HYPERREC_ENSURE(false, "unknown trigger kind '" + kind + "' in spec '" +
                                 spec +
                                 "' (known: steps, spike, spike-min, "
                                 "rent-or-buy, tick)");
    }

    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return trigger;
}

}  // namespace hyperrec::streaming
