#include "streaming/stream_multiplexer.hpp"

#include <algorithm>
#include <utility>

#include "support/ensure.hpp"

namespace hyperrec::streaming {

// Work accounting: every accepted op and every scheduled pool job (shard
// lane or re-solve) holds one `inflight_` unit from creation to completion.
// New units are always acquired BEFORE the unit that spawned them is
// released, so inflight_ can only reach zero when the fleet is genuinely
// quiescent — drain() and the destructor rely on that.

StreamMultiplexer::StreamMultiplexer(MultiplexerConfig config)
    : config_(std::move(config)), cancel_(config_.cancel) {
  pool_ = config_.pool != nullptr ? config_.pool : &ThreadPool::global();
  const std::size_t shards =
      std::clamp<std::size_t>(config_.shards, 1, 256);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // The ONE cache every engine shares; an explicitly injected cache wins,
  // then the stream template's, then a fresh default-sized one.
  if (config_.cache != nullptr) {
    cache_ = config_.cache;
  } else if (config_.stream.cache != nullptr) {
    cache_ = config_.stream.cache;
  } else {
    cache_ = std::make_shared<cache::SolveCache>();
  }
}

StreamMultiplexer::~StreamMultiplexer() { drain(); }

std::size_t StreamMultiplexer::open_stream(MachineSpec machine,
                                           EvalOptions options) {
  StreamingConfig stream_config = config_.stream;
  stream_config.cache = cache_;
  // Fleet determinism: the shape-index fallback seed depends on what OTHER
  // streams solved recently; with it off (and seeds mixed into the window
  // cache keys) a tenant publishes bit-identically to a solo run.
  stream_config.cache_warm_start = false;
  stream_config.cancel = cancel_;
  auto stream = std::make_shared<Stream>();
  stream->engine = std::make_unique<StreamingEngine>(
      std::move(machine), options, std::move(stream_config));
  const MutexLock lock(streams_mutex_);
  stream->id = streams_.size();
  streams_.push_back(std::move(stream));
  return streams_.back()->id;
}

std::shared_ptr<StreamMultiplexer::Stream> StreamMultiplexer::stream_ptr(
    std::size_t id) const {
  const MutexLock lock(streams_mutex_);
  HYPERREC_ENSURE(id < streams_.size(), "stream id out of range");
  return streams_[id];
}

void StreamMultiplexer::append_step(std::size_t stream,
                                    std::vector<ContextRequirement> step) {
  enqueue(stream, Op{Op::Kind::kAppend, std::move(step)});
}

void StreamMultiplexer::flush(std::size_t stream) {
  enqueue(stream, Op{Op::Kind::kFlush, {}});
}

void StreamMultiplexer::flush_all() {
  const std::size_t count = stream_count();
  for (std::size_t id = 0; id < count; ++id) flush(id);
}

void StreamMultiplexer::enqueue(std::size_t id, Op op) {
  const std::shared_ptr<Stream> stream = stream_ptr(id);
  Shard& shard = *shards_[id % shards_.size()];
  bool spawn = false;
  {
    const MutexLock lock(shard.mutex);
    if (shard.lane(id).poisoned) {
      stream->dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (op.kind == Op::Kind::kAppend) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);  // the op's unit
    shard.queue.emplace_back(stream.get(), std::move(op));
    if (!shard.active) {
      shard.active = true;
      spawn = true;
      inflight_.fetch_add(1, std::memory_order_relaxed);  // the lane's unit
    }
  }
  if (spawn) {
    pool_->submit([this, &shard]() { drain_shard(shard); });
  }
}

void StreamMultiplexer::drain_shard(Shard& shard) {
  for (;;) {
    Stream* stream = nullptr;
    Op op;
    {
      const MutexLock lock(shard.mutex);
      while (!shard.queue.empty()) {
        auto& front = shard.queue.front();
        LaneState& lane = shard.lane(front.first->id);
        if (lane.poisoned) {
          front.first->dropped.fetch_add(1, std::memory_order_relaxed);
          shard.queue.pop_front();
          finish_unit();  // the dropped op's unit
          continue;
        }
        if (lane.resolving) {
          // Park: the re-solve job must see the trace exactly as it was at
          // the trigger, so no op may touch the engine until it returns.
          lane.parked.push_back(std::move(front.second));
          shard.queue.pop_front();
          continue;  // the op keeps its unit while parked
        }
        stream = front.first;
        op = std::move(front.second);
        shard.queue.pop_front();
        break;
      }
      if (stream == nullptr) {
        shard.active = false;
        break;
      }
    }
    apply(shard, *stream, std::move(op));
  }
  finish_unit();  // the lane's unit
}

void StreamMultiplexer::apply(Shard& shard, Stream& stream, Op op) {
  std::optional<TriggerKind> trigger;
  try {
    if (op.kind == Op::Kind::kAppend) {
      trigger = stream.engine->append_step_deferred(std::move(op.step));
      stream.applied.fetch_add(1, std::memory_order_relaxed);
    } else {
      trigger = stream.engine->request_flush();
    }
  } catch (const std::exception& error) {
    // A faulting op (bad universe, demand over the pool, ...) poisons only
    // its stream; the fleet keeps running (Xenomai switchtest idiom).
    poison(shard, stream, error.what());
    finish_unit();  // the op's unit
    return;
  }
  if (trigger.has_value()) {
    {
      const MutexLock lock(shard.mutex);
      shard.lane(stream.id).resolving = true;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);  // the job's unit
    pool_->submit([this, &shard, &stream]() { run_resolve(shard, stream); });
  } else if (op.kind == Op::Kind::kAppend) {
    // The append extended the published schedule in place; republish so
    // readers see coverage of the new step.
    publish(stream);
  }
  finish_unit();  // the op's unit
}

void StreamMultiplexer::run_resolve(Shard& shard, Stream& stream) {
  try {
    const CancelToken token = CancelToken::linked(cancel_);
    stream.engine->resolve_pending(token);
    stream.resolves.fetch_add(1, std::memory_order_relaxed);
    if (!stream.engine->windows().back().ok) {
      stream.failed_windows.fetch_add(1, std::memory_order_relaxed);
    }
    publish(stream);
  } catch (const std::exception& error) {
    poison(shard, stream, error.what());
  }
  // Unpark: ops held during the solve go to the FRONT of the shard queue,
  // in order — anything the stream enqueued later is still behind them.
  bool spawn = false;
  {
    const MutexLock lock(shard.mutex);
    LaneState& lane = shard.lane(stream.id);
    lane.resolving = false;
    for (auto it = lane.parked.rbegin(); it != lane.parked.rend(); ++it) {
      shard.queue.emplace_front(&stream, std::move(*it));
    }
    lane.parked.clear();
    if (!shard.queue.empty() && !shard.active) {
      shard.active = true;
      spawn = true;
      inflight_.fetch_add(1, std::memory_order_relaxed);  // the lane's unit
    }
  }
  if (spawn) {
    pool_->submit([this, &shard]() { drain_shard(shard); });
  }
  finish_unit();  // the job's unit
}

void StreamMultiplexer::publish(Stream& stream) {
  const StreamingEngine& engine = *stream.engine;
  auto snapshot = std::make_shared<StreamSnapshot>();
  std::shared_ptr<const StreamSnapshot> previous;
  {
    const MutexLock lock(stream.publish_mutex);
    previous = stream.published;
  }
  snapshot->epoch = (previous != nullptr ? previous->epoch : 0) + 1;
  snapshot->steps = engine.steps();
  snapshot->resolves = engine.resolve_count();
  snapshot->schedule = engine.schedule();
  if (previous != nullptr && previous->resolves == snapshot->resolves) {
    snapshot->published_cost = previous->published_cost;  // no new window
  } else {
    const auto& windows = engine.windows();
    for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
      if (it->ok) {
        snapshot->published_cost = it->published_cost;
        break;
      }
    }
  }
  {
    const MutexLock lock(stream.publish_mutex);
    stream.published = std::move(snapshot);
  }
  publications_.fetch_add(1, std::memory_order_relaxed);
}

void StreamMultiplexer::poison(Shard& shard, Stream& stream,
                               const char* what) {
  {
    const MutexLock lock(shard.mutex);
    LaneState& lane = shard.lane(stream.id);
    lane.poisoned = true;
    // Parked ops will never apply; account them as dropped right here.
    for (std::size_t i = 0; i < lane.parked.size(); ++i) {
      stream.dropped.fetch_add(1, std::memory_order_relaxed);
      finish_unit();
    }
    lane.parked.clear();
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  const MutexLock lock(failure_mutex_);
  if (!first_failure_.has_value()) {
    first_failure_ = FirstFailure{stream.id, stream.engine->steps(), what};
  }
}

void StreamMultiplexer::finish_unit() {
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const MutexLock lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void StreamMultiplexer::drain() {
  HYPERREC_ENSURE(!pool_->on_worker_thread(),
                  "drain() would deadlock on a pool worker thread");
  const MutexLock lock(drain_mutex_);
  while (inflight_.load(std::memory_order_acquire) != 0) {
    drain_cv_.wait(drain_mutex_);
  }
}

std::shared_ptr<const StreamSnapshot> StreamMultiplexer::snapshot(
    std::size_t stream) const {
  const std::shared_ptr<Stream> owner = stream_ptr(stream);
  const MutexLock lock(owner->publish_mutex);
  return owner->published;
}

std::size_t StreamMultiplexer::stream_count() const {
  const MutexLock lock(streams_mutex_);
  return streams_.size();
}

const StreamingEngine& StreamMultiplexer::engine(std::size_t stream) const {
  return *stream_ptr(stream)->engine;
}

FleetStats StreamMultiplexer::fleet_stats() const {
  FleetStats stats;
  {
    const MutexLock lock(streams_mutex_);
    stats.streams = streams_.size();
    for (const std::shared_ptr<Stream>& stream : streams_) {
      stats.applied += stream->applied.load(std::memory_order_relaxed);
      stats.resolves += stream->resolves.load(std::memory_order_relaxed);
      stats.failed_windows +=
          stream->failed_windows.load(std::memory_order_relaxed);
      stats.dropped += stream->dropped.load(std::memory_order_relaxed);
    }
  }
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.publications = publications_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.cache = cache_->stats();
  return stats;
}

std::optional<FirstFailure> StreamMultiplexer::first_failure() const {
  const MutexLock lock(failure_mutex_);
  return first_failure_;
}

std::vector<StreamSummary> StreamMultiplexer::stream_summaries() const {
  const MutexLock lock(streams_mutex_);
  std::vector<StreamSummary> rows;
  rows.reserve(streams_.size());
  for (const std::shared_ptr<Stream>& stream : streams_) {
    StreamSummary row;
    row.id = stream->id;
    // The `applied` counter, not engine->steps(): the engine may be live on
    // its lane, and every applied append ingested exactly one step.
    row.steps = stream->applied.load(std::memory_order_relaxed);
    row.resolves = stream->resolves.load(std::memory_order_relaxed);
    row.failed_windows =
        stream->failed_windows.load(std::memory_order_relaxed);
    std::shared_ptr<const StreamSnapshot> snapshot;
    {
      const MutexLock publish_lock(stream->publish_mutex);
      snapshot = stream->published;
    }
    if (snapshot != nullptr) {
      row.epoch = snapshot->epoch;
      row.published_cost = snapshot->published_cost;
    }
    {
      Shard& shard = *shards_[stream->id % shards_.size()];
      const MutexLock shard_lock(shard.mutex);
      row.poisoned = shard.lane(stream->id).poisoned;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hyperrec::streaming
