// Strict textual trigger specs, shared by the CLI and the solve daemon.
//
// A trigger spec is a comma-separated list of re-solve triggers:
//
//   steps:N       re-solve every N appended steps (N > 0)
//   spike:F       demand-spike factor (plain decimal, > 0)
//   spike-min:D   absolute demand floor for the spike trigger
//   rent-or-buy   per-task rent-or-buy controller (flag, no value)
//   tick:MS       wall-clock budget in milliseconds (MS > 0)
//
// Parsing is strict on purpose: a daemon config (or a long-running bench
// invocation) with a silently dropped trigger key runs with the *wrong
// policy* and nobody notices until the latency graphs do.  Unknown keys
// ("spkie:2.0"), missing/empty/partial values ("steps", "steps:",
// "steps:16abc"), values on flag-only keys ("rent-or-buy:5"), negative,
// zero or non-finite numbers, hex floats ("spike:0x1p4") and duplicate
// keys all throw PreconditionError with the offending item in the message.
// Zero is rejected rather than treated as "disabled": a disabled trigger
// is expressed by omitting the key, so "steps:0" is always a config bug.
#pragma once

#include <string>

#include "streaming/streaming_engine.hpp"

namespace hyperrec::streaming {

/// Parses a trigger spec (see file comment).  The spec must be non-empty —
/// "no triggers" is expressed by not passing a spec at all, not by an empty
/// string (which is almost always a quoting accident).
[[nodiscard]] TriggerConfig parse_trigger_spec(const std::string& spec);

}  // namespace hyperrec::streaming
