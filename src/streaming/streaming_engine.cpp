#include "streaming/streaming_engine.hpp"

#include <algorithm>
#include <utility>

#include "cache/fingerprint.hpp"
#include "support/ensure.hpp"

namespace hyperrec::streaming {

namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::size_t> machine_universes(const MachineSpec& machine) {
  std::vector<std::size_t> universes;
  universes.reserve(machine.task_count());
  for (const TaskSpec& task : machine.tasks) {
    universes.push_back(task.local_switches);
  }
  return universes;
}

/// Mixes the warm seed into a window cache key.  Deterministic solvers make
/// (instance, seed) → solution a pure function, so a seed-keyed hit is
/// guaranteed to be the exact solution this stream would have computed —
/// the invariant the multiplexed-vs-solo bit-identity property rests on.
/// Only seeds derived from the stream's own state (the published schedule,
/// or a caller preset) are mixed; seeds pulled from the cache's shape index
/// are opportunistic accelerators and stay out of the key.
void mix_seed_into_key(cache::InstanceKey& key,
                       const std::vector<MultiTaskSchedule>& seeds) {
  std::string tag = "|warm:";
  for (const MultiTaskSchedule& seed : seeds) {
    tag += 's';
    for (const Partition& partition : seed.tasks) {
      tag += 'p';
      for (const std::size_t s : partition.starts()) {
        tag += std::to_string(s);
        tag += ',';
      }
    }
    tag += 'g';
    for (const std::size_t g : seed.global_boundaries) {
      tag += std::to_string(g);
      tag += ',';
    }
  }
  key.canonical += tag;
  key.fingerprint = cache::fingerprint_bytes(key.canonical);
  // key.shape stays untouched: the warm-start index still matches on shape.
}

}  // namespace

const char* to_string(TriggerKind kind) noexcept {
  switch (kind) {
    case TriggerKind::kInitial: return "initial";
    case TriggerKind::kQuotaRepair: return "quota-repair";
    case TriggerKind::kStepCount: return "step-count";
    case TriggerKind::kDemandSpike: return "demand-spike";
    case TriggerKind::kRentOrBuy: return "rent-or-buy";
    case TriggerKind::kDeadlineTick: return "deadline-tick";
    case TriggerKind::kFlush: return "flush";
  }
  return "initial";
}

StreamingEngine::StreamingEngine(MachineSpec machine, EvalOptions options,
                                 StreamingConfig config)
    : machine_(std::move(machine)),
      options_(options),
      config_(std::move(config)),
      stats_(machine_universes(machine_), config_.builder) {
  HYPERREC_ENSURE(machine_.task_count() > 0,
                  "streaming engine needs at least one task");
  HYPERREC_ENSURE(config_.window >= 1, "window must be at least 1");
  // The engine is the unit of sequencing: window solves run serially; batch
  // jobs (or whole streams) are what parallelise.
  config_.portfolio.parallel = false;
  config_.portfolio.pool = nullptr;
  if (config_.trigger.rent_or_buy) {
    rent_or_buy_.reserve(machine_.task_count());
    for (const TaskSpec& task : machine_.tasks) {
      rent_or_buy_.emplace_back(task.local_switches, task.local_init,
                                config_.trigger.rent_or_buy_config);
    }
  }
}

std::optional<TriggerKind> StreamingEngine::ingest(
    std::vector<ContextRequirement> step) {
  HYPERREC_ENSURE(step.size() == machine_.task_count(),
                  "append_step needs exactly one requirement per task");
  // Arm the tick clock on first ingest, not at construction: a daemon
  // registers tenant engines ahead of traffic, and a construction-time
  // baseline would let an idle gap before the first steps count as "time
  // since the last solve" and fire kDeadlineTick although nothing was ever
  // solved.
  if (stats_.steps() == 0) last_solve_ = Clock::now();
  for (const ContextRequirement& req : step) {
    HYPERREC_ENSURE(req.private_demand <= machine_.private_global_units,
                    "step private demand exceeds the machine's pool");
  }

  // Rent-or-buy controllers see every step (their waste accounting is
  // stateful), whether or not their verdict ends up being the trigger.
  bool bought = false;
  if (config_.trigger.rent_or_buy) {
    for (std::size_t j = 0; j < rent_or_buy_.size(); ++j) {
      bought = rent_or_buy_[j].step(step[j]) || bought;
    }
  }

  stats_.append_step(std::move(step));
  ++pending_;
  const std::size_t n = stats_.steps();

  if (n == 1) {
    // The first step must always produce a published schedule.
    return TriggerKind::kInitial;
  }

  // Grow the published schedule under the appended step before any
  // re-solve: the splice freezes "boundaries before the window" out of it,
  // so it must cover [0, n) at all times.  O(1) per task — the appended
  // step joins each task's last interval.
  for (Partition& partition : published_.tasks) {
    partition.extend(n);
  }
  published_breakdown_.reset();  // the extended schedule has a new cost

  // Correctness trigger, always on for private-global machines: the
  // appended step joined the published schedule's last quota block, and if
  // the block's Σ_j max demand now overflows the pool the §4.2 evaluator
  // would reject the schedule.  Re-solving forces a global boundary at the
  // splice seam, sealing the overflowing block off.  O(tasks) per step via
  // the incremental range maxima.
  if (machine_.private_global_units > 0 && !published_.tasks.empty()) {
    const std::size_t block_lo = published_.global_boundaries.empty()
                                     ? 0
                                     : published_.global_boundaries.back();
    std::uint64_t quota_sum = 0;
    for (std::size_t j = 0; j < stats_.task_count(); ++j) {
      quota_sum += stats_.task(j).max_private_demand(block_lo, n);
    }
    if (quota_sum > machine_.private_global_units) {
      return TriggerKind::kQuotaRepair;
    }
  }

  const TriggerConfig& trigger = config_.trigger;
  if (trigger.every_steps > 0 && pending_ >= trigger.every_steps) {
    return TriggerKind::kStepCount;
  }
  if (trigger.spike_factor > 0.0) {
    const std::uint64_t fresh = stats_.step_demand_sum(n - 1);
    // Baseline: the trailing `window` steps of the *current* trace, fresh
    // step excluded.  An absolute floor keeps an all-quiet baseline (max 0)
    // from firing on the first trickle of demand.
    const std::size_t base_lo =
        n - 1 > config_.window ? n - 1 - config_.window : 0;
    const std::uint64_t baseline = stats_.max_step_demand_sum(base_lo, n - 1);
    if (fresh >= trigger.spike_min_demand &&
        static_cast<double>(fresh) >
            trigger.spike_factor * static_cast<double>(baseline)) {
      return TriggerKind::kDemandSpike;
    }
  }
  if (trigger.rent_or_buy && bought) {
    return TriggerKind::kRentOrBuy;
  }
  if (trigger.tick.count() > 0 && Clock::now() - last_solve_ >= trigger.tick) {
    return TriggerKind::kDeadlineTick;
  }
  return std::nullopt;
}

bool StreamingEngine::append_step(std::vector<ContextRequirement> step) {
  const std::optional<TriggerKind> trigger = ingest(std::move(step));
  if (!trigger.has_value()) return false;
  resolve_window(*trigger, config_.cancel);
  return true;
}

bool StreamingEngine::flush() {
  if (pending_ == 0 || stats_.steps() == 0) return false;
  resolve_window(TriggerKind::kFlush, config_.cancel);
  return true;
}

std::optional<TriggerKind> StreamingEngine::append_step_deferred(
    std::vector<ContextRequirement> step) {
  HYPERREC_ENSURE(!pending_trigger_.has_value(),
                  "append_step_deferred with a trigger already pending — "
                  "the driver must resolve_pending() first");
  pending_trigger_ = ingest(std::move(step));
  return pending_trigger_;
}

std::optional<TriggerKind> StreamingEngine::request_flush() {
  HYPERREC_ENSURE(!pending_trigger_.has_value(),
                  "request_flush with a trigger already pending — "
                  "the driver must resolve_pending() first");
  if (pending_ == 0 || stats_.steps() == 0) return std::nullopt;
  pending_trigger_ = TriggerKind::kFlush;
  return pending_trigger_;
}

void StreamingEngine::resolve_pending(const CancelToken& cancel) {
  HYPERREC_ENSURE(pending_trigger_.has_value(),
                  "resolve_pending without a latched trigger");
  const TriggerKind trigger = *pending_trigger_;
  pending_trigger_.reset();
  resolve_window(trigger, cancel);
}

MultiTaskTrace StreamingEngine::window_trace(std::size_t lo,
                                             std::size_t hi) const {
  MultiTaskTrace window;
  for (std::size_t j = 0; j < stats_.task_count(); ++j) {
    window.add_task(stats_.trace().task(j).slice(lo, hi));
  }
  return window;
}

MultiTaskSchedule StreamingEngine::warm_seed(std::size_t lo,
                                             std::size_t hi) const {
  // Previous published boundaries restricted to [lo, hi) and re-anchored at
  // 0 — the sliding window shares most of its steps with the previous one,
  // so this is exactly the "previous window's schedule" seed.
  MultiTaskSchedule seed;
  for (const Partition& partition : published_.tasks) {
    std::vector<std::size_t> starts{0};
    for (const std::size_t s : partition.starts()) {
      if (s > lo && s < hi) starts.push_back(s - lo);
    }
    seed.tasks.push_back(Partition::from_starts(std::move(starts), hi - lo));
  }
  // Global boundaries are normalized by the portfolio for the machine.
  return seed;
}

MultiTaskSchedule StreamingEngine::splice(const MultiTaskSchedule& window,
                                          std::size_t lo, std::size_t hi,
                                          std::size_t* prefix_boundaries)
    const {
  MultiTaskSchedule spliced;
  std::size_t frozen = 0;
  for (std::size_t j = 0; j < window.tasks.size(); ++j) {
    std::vector<std::size_t> starts;
    if (lo > 0) {
      for (const std::size_t s : published_.tasks[j].starts()) {
        if (s < lo) starts.push_back(s);
      }
      frozen += starts.size();
    }
    // The window partition always has a boundary at 0 → the spliced
    // sequence has one at lo, keeping it strictly increasing after the
    // frozen prefix.
    for (const std::size_t s : window.tasks[j].starts()) {
      starts.push_back(lo + s);
    }
    spliced.tasks.push_back(Partition::from_starts(std::move(starts), hi));
  }
  if (lo > 0) {
    for (const std::size_t g : published_.global_boundaries) {
      if (g < lo) spliced.global_boundaries.push_back(g);
    }
  }
  for (const std::size_t g : window.global_boundaries) {
    spliced.global_boundaries.push_back(lo + g);
  }
  if (machine_.has_global_resources()) {
    // Quota blocks must not span the splice seam: per-block feasibility was
    // only checked inside each window.  Every task has a boundary at lo, so
    // a global hyperreconfiguration there is always legal.
    if (!std::binary_search(spliced.global_boundaries.begin(),
                            spliced.global_boundaries.end(), lo)) {
      spliced.global_boundaries.insert(
          std::upper_bound(spliced.global_boundaries.begin(),
                           spliced.global_boundaries.end(), lo),
          lo);
    }
  }
  if (prefix_boundaries != nullptr) *prefix_boundaries = frozen;
  return spliced;
}

void StreamingEngine::resolve_window(TriggerKind trigger,
                                     const CancelToken& cancel) {
  const std::size_t hi = stats_.steps();
  // No published schedule (a failed initial solve) means there is no stable
  // prefix to splice against — solve the whole trace in that case.
  const std::size_t lo = (published_.tasks.empty() || hi <= config_.window)
                             ? 0
                             : hi - config_.window;

  WindowReport report;
  report.index = windows_.size();
  report.trigger = trigger;
  report.window_lo = lo;
  report.window_hi = hi;
  const Clock::time_point start = Clock::now();

  try {
    HYPERREC_ENSURE(!cancel.cancelled(),
                    "stream cancelled before the window solve");
    const SolveInstance instance(window_trace(lo, hi), machine_, options_);

    engine::PortfolioConfig per_solve = config_.portfolio;
    bool warm_seeded = false;
    // Seeds that are a function of this stream's own state get mixed into
    // the cache key below; a seed borrowed from the cache's shape index is
    // not (it depends on what other tenants solved recently).
    bool seed_in_key = !per_solve.warm_start.empty();
    if (config_.warm_start && per_solve.warm_start.empty()) {
      if (!published_.tasks.empty()) {
        per_solve.warm_start.push_back(warm_seed(lo, hi));
        warm_seeded = true;
        seed_in_key = true;
      } else if (config_.cache != nullptr && config_.cache_warm_start) {
        if (auto warm = config_.cache->warm_start_for(instance)) {
          per_solve.warm_start.push_back(std::move(*warm));
          warm_seeded = true;
        }
      }
    }

    MTSolution window_solution;
    if (config_.cache != nullptr) {
      cache::InstanceKey key = cache::make_instance_key(instance);
      if (seed_in_key) mix_seed_into_key(key, per_solve.warm_start);
      cache::CacheOutcome outcome = cache::CacheOutcome::kMiss;
      window_solution = config_.cache->get_or_compute_guarded(
          key,
          [&]() {
            // warm_started is recorded here, where a solve actually runs —
            // a cache hit never consumed the seed.
            report.warm_started = warm_seeded;
            engine::PortfolioResult race =
                engine::solve_portfolio(instance, per_solve, cancel);
            report.winner = std::move(race.winner);
            // A window solved under a fired stream token is a rushed
            // incumbent — serve it, but never memoize it.
            return cache::ComputeResult{std::move(race.best),
                                        !cancel.cancelled()};
          },
          &outcome);
      report.cache = outcome;
      if (outcome == cache::CacheOutcome::kHit) {
        report.winner = "cache";
      } else if (outcome == cache::CacheOutcome::kCoalesced &&
                 report.winner.empty()) {
        // Piggybacked on another stream's in-flight solve of the same
        // (window, seed): no portfolio member ran in this thread, so there
        // is no real winner name to keep.
        report.winner = "coalesced";
      }
    } else {
      report.warm_started = warm_seeded;
      engine::PortfolioResult race =
          engine::solve_portfolio(instance, per_solve, cancel);
      report.winner = std::move(race.winner);
      window_solution = std::move(race.best);
    }
    report.window_cost = window_solution.total();

    MultiTaskSchedule spliced = splice(window_solution.schedule, lo, hi,
                                       &report.splice_prefix_boundaries);
    spliced.validate(machine_.task_count(), hi);
    CostBreakdown full = evaluate_fully_sync_switch(stats_.trace(), machine_,
                                                    spliced, options_);
    // Publish only after the spliced schedule validated and evaluated —
    // a throw above leaves the previous published schedule untouched.
    published_ = std::move(spliced);
    report.published_cost = full.total;
    published_breakdown_ = std::move(full);
    report.ok = true;
    pending_ = 0;
    last_solve_ = Clock::now();
  } catch (const std::exception& error) {
    report.error = error.what();
  }
  report.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  windows_.push_back(std::move(report));
}

MTSolution StreamingEngine::current_solution() const {
  HYPERREC_ENSURE(stats_.steps() > 0, "no steps appended yet");
  HYPERREC_ENSURE(!published_.tasks.empty(),
                  "no published schedule (initial solve failed?)");
  MTSolution solution;
  solution.schedule = published_;
  // The last re-solve already evaluated exactly this schedule over exactly
  // this trace; only appends invalidate that breakdown.
  solution.breakdown = published_breakdown_.has_value()
                           ? *published_breakdown_
                           : evaluate_fully_sync_switch(
                                 stats_.trace(), machine_, published_,
                                 options_);
  return solution;
}

}  // namespace hyperrec::streaming
