#include "dag/generators.hpp"

namespace hyperrec {

Dag make_chain(std::size_t nodes) {
  Dag dag(nodes);
  for (std::size_t v = 0; v + 1 < nodes; ++v) dag.add_edge(v, v + 1);
  return dag;
}

Dag make_layered(std::size_t layers, std::size_t width, std::size_t fanout,
                 Xoshiro256& rng) {
  HYPERREC_ENSURE(layers > 0 && width > 0, "layers and width must be positive");
  Dag dag(layers * width);
  for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t from = layer * width + i;
      for (std::size_t f = 0; f < fanout; ++f) {
        const std::size_t to = (layer + 1) * width + rng.uniform(width);
        dag.add_edge(from, to);
      }
    }
  }
  return dag;
}

Dag make_subset_lattice(std::size_t bits) {
  HYPERREC_ENSURE(bits <= 20, "subset lattice limited to 2^20 nodes");
  const std::size_t nodes = std::size_t{1} << bits;
  Dag dag(nodes);
  for (std::size_t mask = 0; mask < nodes; ++mask) {
    for (std::size_t bit = 0; bit < bits; ++bit) {
      if ((mask & (std::size_t{1} << bit)) == 0) {
        dag.add_edge(mask, mask | (std::size_t{1} << bit));
      }
    }
  }
  return dag;
}

}  // namespace hyperrec
