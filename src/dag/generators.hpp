// Random and structured DAG generators for tests and the DAG-model bench.
#pragma once

#include <cstddef>

#include "dag/dag.hpp"
#include "support/rng.hpp"

namespace hyperrec {

/// A simple chain h0 → h1 → … → h_{k-1} (total order of hypercontexts).
[[nodiscard]] Dag make_chain(std::size_t nodes);

/// Layered random DAG: `layers` layers of `width` nodes; each node gets
/// edges to `fanout` random nodes of the next layer.  Guaranteed acyclic.
[[nodiscard]] Dag make_layered(std::size_t layers, std::size_t width,
                               std::size_t fanout, Xoshiro256& rng);

/// The full subset lattice over `bits` elements (2^bits nodes): node mask u
/// has an edge to v iff v = u | (1 << i) for some i ∉ u.  This models the
/// switch model's hypercontext space as a DAG and is used to cross-validate
/// the DAG solver against the switch solver on tiny universes.
[[nodiscard]] Dag make_subset_lattice(std::size_t bits);

}  // namespace hyperrec
