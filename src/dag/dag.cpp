#include "dag/dag.hpp"

#include <algorithm>
#include <deque>

namespace hyperrec {

void Dag::add_edge(NodeId from, NodeId to) {
  HYPERREC_ENSURE(from < node_count() && to < node_count(),
                  "edge endpoint out of range");
  HYPERREC_ENSURE(from != to, "self-loops are not allowed in a DAG");
  adjacency_[from].push_back(to);
}

std::vector<Dag::NodeId> Dag::topological_sort() const {
  std::vector<std::size_t> indegree(node_count(), 0);
  for (const auto& next : adjacency_)
    for (const NodeId to : next) ++indegree[to];

  std::deque<NodeId> ready;
  for (NodeId v = 0; v < node_count(); ++v)
    if (indegree[v] == 0) ready.push_back(v);

  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const NodeId to : adjacency_[v])
      if (--indegree[to] == 0) ready.push_back(to);
  }
  HYPERREC_ENSURE(order.size() == node_count(),
                  "topological_sort() on a cyclic graph");
  return order;
}

bool Dag::is_acyclic() const {
  try {
    (void)topological_sort();
    return true;
  } catch (const PreconditionError&) {
    return false;
  }
}

std::vector<DynamicBitset> Dag::reachability() const {
  const std::vector<NodeId> order = topological_sort();
  std::vector<DynamicBitset> reach(node_count(), DynamicBitset(node_count()));
  // Process in reverse topological order so successors are complete.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    reach[v].set(v);
    for (const NodeId to : adjacency_[v]) reach[v] |= reach[to];
  }
  return reach;
}

std::vector<Dag::NodeId> Dag::minimal_elements(
    const std::vector<NodeId>& subset,
    const std::vector<DynamicBitset>& reach) {
  std::vector<NodeId> minimal;
  for (const NodeId candidate : subset) {
    const bool dominated = std::any_of(
        subset.begin(), subset.end(), [&](const NodeId other) {
          return other != candidate && reach[other].test(candidate);
        });
    if (!dominated) minimal.push_back(candidate);
  }
  return minimal;
}

std::size_t Dag::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& next : adjacency_) total += next.size();
  return total;
}

}  // namespace hyperrec
