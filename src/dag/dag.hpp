// Directed acyclic graph substrate for the DAG cost model (§2 of the paper).
//
// In the DAG model the hypercontexts of a coarse-grained machine are ordered
// by a precedence relation given as a DAG: an edge (h1, h2) means
// h1(C) ⊂ h2(C) (h2 is at least as capable) and cost(h1) ≤ cost(h2).
// Solvers need reachability ("is h at least as capable as g?"), minimal
// elements of the satisfier set c(H), and topological iteration.
#pragma once

#include <cstddef>
#include <vector>

#include "support/bitset.hpp"

namespace hyperrec {

class Dag {
 public:
  using NodeId = std::size_t;

  explicit Dag(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }

  /// Adds edge from → to.  Self-loops are rejected; cycles are detected by
  /// validate() / topological_sort(), not here.
  void add_edge(NodeId from, NodeId to);

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId node) const {
    HYPERREC_ENSURE(node < node_count(), "node id out of range");
    return adjacency_[node];
  }

  /// Kahn's algorithm; throws PreconditionError if the graph has a cycle.
  [[nodiscard]] std::vector<NodeId> topological_sort() const;

  /// True iff the graph is acyclic.
  [[nodiscard]] bool is_acyclic() const;

  /// Transitive closure: result[v] has bit u set iff u is reachable from v
  /// (including v itself).  Bitset DP over the reverse topological order,
  /// O(V·E/64) words.
  [[nodiscard]] std::vector<DynamicBitset> reachability() const;

  /// Nodes of `subset` that are minimal with respect to reachability, i.e.
  /// no other subset member reaches them.  With reachability from
  /// reachability(); used to compute the minimal satisfier sets c(H).
  [[nodiscard]] static std::vector<NodeId> minimal_elements(
      const std::vector<NodeId>& subset,
      const std::vector<DynamicBitset>& reach);

  [[nodiscard]] std::size_t edge_count() const noexcept;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace hyperrec
