#include "engine/portfolio.hpp"

#include <future>
#include <utility>

#include "core/lower_bound.hpp"

namespace hyperrec::engine {

namespace {

using Clock = std::chrono::steady_clock;

std::vector<NamedSolver> resolve_members(const PortfolioConfig& config,
                                         const SolveHints& hints) {
  std::vector<NamedSolver> members;
  std::vector<NamedSolver> line_up = standard_solvers(hints);
  if (config.solvers.empty()) {
    members = std::move(line_up);
  } else {
    members.reserve(config.solvers.size());
    for (const std::string& name : config.solvers) {
      bool found = false;
      for (const NamedSolver& solver : line_up) {
        if (solver.name == name) {
          members.push_back(solver);
          found = true;
          break;
        }
      }
      HYPERREC_ENSURE(found, "unknown portfolio solver: " + name);
    }
  }
  for (const NamedSolver& solver : config.extra) {
    HYPERREC_ENSURE(static_cast<bool>(solver.fn),
                    "extra portfolio member has no solver function");
    members.push_back(solver);
  }
  return members;
}

}  // namespace

PortfolioResult solve_portfolio(const MultiTaskTrace& trace,
                                const MachineSpec& machine,
                                const EvalOptions& options,
                                const PortfolioConfig& config,
                                const CancelToken& cancel) {
  return solve_portfolio(SolveInstance(trace, machine, options), config,
                         cancel);
}

PortfolioResult solve_portfolio(const SolveInstance& instance,
                                const PortfolioConfig& config,
                                const CancelToken& cancel) {
  HYPERREC_ENSURE(config.warm_start.size() <= 1,
                  "at most one warm-start schedule");
  SolveHints hints;
  if (!config.warm_start.empty()) {
    // Normalize the incumbent for this machine (a cached schedule may come
    // from a machine with different global resources), then insist it fits
    // the instance — a mis-shaped seed would only surface deep inside a
    // member solver.
    MultiTaskSchedule warm = config.warm_start.front();
    warm.global_boundaries.clear();
    if (instance.machine().has_global_resources()) {
      warm.global_boundaries.push_back(0);
    }
    warm.validate(instance.task_count(), instance.steps());
    hints.warm_start.push_back(std::move(warm));
  }
  const std::vector<NamedSolver> members = resolve_members(config, hints);
  HYPERREC_ENSURE(!members.empty(), "portfolio needs at least one member");

  CancelToken race = config.deadline.count() > 0
                         ? CancelToken::linked(cancel,
                                               Clock::now() + config.deadline)
                         : CancelToken::linked(cancel);

  PortfolioResult result;
  result.entries.resize(members.size());
  std::vector<MTSolution> solutions(members.size());
  const Clock::time_point race_start = Clock::now();

  auto run_member = [&](std::size_t i) {
    PortfolioEntry& entry = result.entries[i];
    entry.solver = members[i].name;
    const Clock::time_point start = Clock::now();
    try {
      // Every member races the same shared instance (no per-racer copies).
      solutions[i] = members[i].solve(instance, race);
      entry.total = solutions[i].total();
      entry.ok = true;
      if (config.cancel_losers) race.cancel();
    } catch (const std::exception& error) {
      entry.error = error.what();
    }
    entry.elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start);
  };

  ThreadPool& pool = config.pool != nullptr ? *config.pool
                                            : ThreadPool::global();
  // on_worker_thread(): racing from inside a worker of the target pool
  // would block it on members queued behind it (no work stealing) —
  // degrade to the serial branch, mirroring parallel_for's guard.
  if (config.parallel && members.size() > 1 && !pool.on_worker_thread()) {
    std::vector<std::future<void>> futures;
    futures.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      futures.push_back(pool.submit([&run_member, i]() { run_member(i); }));
    }
    for (auto& future : futures) future.get();
  } else {
    bool decided = false;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (config.cancel_losers && decided) {
        // Running a member after the race is decided would only hand it an
        // already-cancelled token and collect a degenerate incumbent —
        // report it as skipped instead of as a plausible-looking result.
        result.entries[i].solver = members[i].name;
        result.entries[i].error = "skipped: an earlier member won the race";
        continue;
      }
      run_member(i);
      decided = decided || result.entries[i].ok;
    }
  }

  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - race_start);

  bool have_winner = false;
  std::size_t winner = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!result.entries[i].ok) continue;
    if (!have_winner || result.entries[i].total < result.entries[winner].total) {
      have_winner = true;
      winner = i;
    }
  }
  HYPERREC_ENSURE(have_winner, "every portfolio member failed: " +
                                   result.entries.front().error);
  result.best = std::move(solutions[winner]);
  result.winner = members[winner].name;
  if (config.certify && instance.synchronized()) {
    attach_certificate(instance, result.best);
  }
  return result;
}

}  // namespace hyperrec::engine
