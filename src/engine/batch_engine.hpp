// Batch solving engine: shard many solve jobs across a thread pool.
//
// The serving-scale counterpart of the one-instance solvers: a BatchEngine
// takes a vector of (trace, machine, options) jobs and overlaps them on its
// own ThreadPool.  Each job is solved by the configured portfolio (see
// portfolio.hpp) — or by a custom per-job solver, the hook experiments and
// tests use to plug in alternative backends.  Results keep input order and
// carry per-job wall time, the winning solver's name and full cost
// breakdown, plus the per-member portfolio entries; io/result_json.hpp
// serialises a BatchResult for downstream tooling.
//
// Concurrency model: the job is the unit of parallelism.  Inside a job the
// portfolio runs serially — a pool worker blocking on more work queued
// behind it would deadlock the shared-queue pool, and sharding jobs already
// saturates the hardware.  A job that throws (infeasible instance, shape
// mismatch) is reported in its JobResult; it never aborts the batch.
//
// Instance construction: a job that actually solves builds exactly one
// SolveInstance (model/instance.hpp) — validation and the shared
// interval-query precomputation come from that object, and every portfolio
// member races it by const reference.  Cache hits never build one: the
// fingerprint is encoded straight off the job triple, keeping the hit path
// at encode-and-lookup cost.
//
// Caching: with a SolveCache configured, each job is keyed by its instance
// fingerprint — repeats are served from the cache, duplicates in flight
// coalesce onto one solve (waiting on an *actively running* computation,
// never on queued work, so the pool cannot deadlock), and optionally a
// same-shape cached schedule warm-starts the iterative solvers on a miss.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/solve_cache.hpp"
#include "engine/portfolio.hpp"
#include "streaming/stream_multiplexer.hpp"
#include "streaming/streaming_engine.hpp"
#include "support/cancel.hpp"

namespace hyperrec::engine {

struct BatchJob {
  MultiTaskTrace trace;
  MachineSpec machine;
  EvalOptions options;
  std::string name;  ///< free-form label echoed into the result/JSON
};

/// Streaming-replay mode for a batch (see BatchEngineConfig::stream).
struct StreamReplayConfig {
  bool enabled = false;
  /// Solve window for the per-job streaming engines.
  std::size_t window = 256;
  streaming::TriggerConfig trigger;
  /// Seed each window re-solve with the previous window's schedule (and
  /// the cache's same-shape incumbent).  On by default — it is the core
  /// streaming economics; turn off for cold-start baselines.  Distinct
  /// from BatchEngineConfig::warm_start, which only governs the offline
  /// per-job path.
  bool warm_start = true;
  /// Multiplexed replay: instead of one inline StreamingEngine per pool
  /// job, ALL jobs stream concurrently through one StreamMultiplexer over
  /// the engine's pool (one stream per job, appends interleaved round-robin
  /// across jobs, re-solves as pool jobs, ONE shared SolveCache).
  /// BatchResult then carries the fleet summary.
  bool multiplex = false;
  /// Shard lanes for the multiplexed replay.
  std::size_t shards = 4;
};

struct BatchEngineConfig {
  /// Worker threads for the batch; 0 means hardware concurrency.
  std::size_t parallelism = 0;
  /// Per-job solving strategy.  `parallel` and `pool` are ignored: inside a
  /// batch the portfolio always runs serially (see file comment).
  PortfolioConfig portfolio;
  /// Engine-wide cancellation; per-job deadlines are linked under it.
  CancelToken cancel;
  /// When set, solves each job instead of the portfolio.  The token passed
  /// in is the job's deadline-linked token.
  std::function<MTSolution(const BatchJob&, const CancelToken&)> solver;
  /// Memoizing solve cache.  When set, duplicate jobs within a batch
  /// coalesce onto one in-flight computation and repeats across batches
  /// return the cached schedule.  Jobs whose token is already expired at
  /// entry are served their fallback incumbent but never memoized.  The
  /// cache key is (trace, machine,
  /// options) only — it does NOT cover the solving configuration — so
  /// share one cache only between engines with an equivalent setup (same
  /// portfolio members and custom `solver`); engines with different
  /// line-ups would serve each other's quality level as authoritative.
  std::shared_ptr<cache::SolveCache> cache;
  /// With a cache: on a miss, feed the most recent same-shape cached
  /// schedule to the portfolio's iterative solvers as their initial
  /// incumbent (see PortfolioConfig::warm_start).
  bool warm_start = false;
  /// Certify fresh portfolio solves: lower_bound + gap_pct stamped on each
  /// job's solution (see PortfolioConfig::certify).  Cache hits reuse
  /// whatever certificate the memoized solution carries; custom-solver and
  /// streaming-replay jobs attach their own or none.
  bool certify = false;
  /// Streaming replay: when enabled, each job's trace is fed step-by-step
  /// through a streaming::StreamingEngine (windowed warm-started re-solves
  /// + final flush) instead of one offline portfolio solve.  The job-level
  /// memoization above is bypassed — the streaming engine caches *window*
  /// instances through the same `cache` instead — and JobResult carries the
  /// per-window reports.
  StreamReplayConfig stream;
};

/// How a job's solution was obtained relative to the cache.
enum class JobCacheOutcome : std::uint8_t {
  kBypass,     ///< no cache configured
  kMiss,       ///< solved fresh (and inserted)
  kHit,        ///< served from the cache
  kCoalesced,  ///< waited on an identical in-flight job
};

[[nodiscard]] const char* to_string(JobCacheOutcome outcome) noexcept;

struct JobResult {
  std::size_t index = 0;  ///< position in the input vector
  std::string name;
  bool ok = false;
  std::string error;  ///< exception text when !ok
  std::string winner;   ///< "cache" when served by a hit or coalesced wait
  MTSolution solution;  ///< valid only when ok
  std::vector<PortfolioEntry> entries;  ///< empty under a custom solver
  std::chrono::microseconds elapsed{0};
  JobCacheOutcome cache = JobCacheOutcome::kBypass;
  bool warm_started = false;  ///< a warm-start incumbent seeded the solve
  bool streamed = false;      ///< solved by streaming replay
  /// One report per window re-solve (streaming replay only).
  std::vector<streaming::WindowReport> windows;
};

struct BatchResult {
  std::vector<JobResult> jobs;  ///< input order
  std::chrono::microseconds elapsed{0};
  std::size_t parallelism = 0;
  /// Cache state snapshotted after the batch (cumulative over the cache's
  /// lifetime, not per batch); zeros when no cache is configured.
  bool cache_enabled = false;
  std::size_t cache_capacity = 0;
  std::size_t cache_size = 0;
  cache::SolveCacheStats cache_stats;
  /// Multiplexed streaming replay only: fleet-wide counters and one row
  /// per stream, in job order (io/result_json serialises them as the
  /// "fleet" object).
  std::optional<streaming::FleetStats> fleet;
  std::vector<streaming::StreamSummary> fleet_streams;
};

class BatchEngine {
 public:
  explicit BatchEngine(BatchEngineConfig config = {});

  /// Solves all jobs, overlapping them across the engine's pool.  Never
  /// throws for per-job failures; see JobResult::ok.
  [[nodiscard]] BatchResult solve(const std::vector<BatchJob>& jobs) const;

  [[nodiscard]] std::size_t parallelism() const noexcept {
    return pool_->thread_count();
  }

 private:
  void solve_multiplexed(const std::vector<BatchJob>& jobs,
                         BatchResult& result) const;

  BatchEngineConfig config_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace hyperrec::engine
