// Portfolio solving: race several registry solvers on one instance.
//
// Algorithm-portfolio runtimes (one instance, many strategies, pick the
// best answer available when the budget runs out) are the standard way to
// serve optimisation problems under latency targets.  solve_portfolio runs
// a configurable subset of standard_solvers() on the same (trace, machine,
// options) instance, all sharing one CancelToken:
//
//   * with a deadline, iterative solvers (annealing, genetic, coordinate
//     descent) return their incumbent when it fires, so every member
//     produces a feasible answer;
//   * with cancel_losers, the first member to finish cancels the rest —
//     latency mode for serving;
//   * members run either concurrently on a ThreadPool or serially
//     (deterministic, and required when called from inside a pool worker —
//     see BatchEngine).
//
// The best completed answer wins; ties break towards the earlier line-up
// position, so results are deterministic for a fixed member set.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"

namespace hyperrec::engine {

struct PortfolioConfig {
  /// Names from standard_solvers() to race; empty means the whole line-up.
  /// Unknown names are a precondition error.
  std::vector<std::string> solvers;
  /// Per-call budget; 0 means none.  Implemented as a CancelToken deadline
  /// shared by all members.
  std::chrono::milliseconds deadline{0};
  /// First completed member cancels the rest (latency mode).  Under
  /// parallel execution the cancelled members still report their
  /// incumbents; under serial execution the remaining members are skipped
  /// outright (ok = false, error notes the skip) — running them would only
  /// collect degenerate incumbents from an already-cancelled token.
  bool cancel_losers = false;
  /// Run members concurrently on `pool` (nullptr: the global pool).  When
  /// the caller itself runs on a worker of that pool the race silently
  /// degrades to serial execution (blocking a worker on work queued behind
  /// it would deadlock the shared no-work-stealing queue).
  bool parallel = true;
  ThreadPool* pool = nullptr;
  /// Warm-start incumbent fed to the iterative members (SA/GA/coordinate
  /// descent) as their initial solution — e.g. a same-shape schedule from
  /// the solve cache.  0 or 1 entries; must validate against the instance
  /// (global boundaries are normalized for the machine automatically).
  std::vector<MultiTaskSchedule> warm_start;
  /// Additional members raced after the named line-up — custom solvers for
  /// experiments and tests (e.g. asserting that every racer observes the
  /// same SolveInstance).  Unlike `solvers`, these need no registry entry.
  std::vector<NamedSolver> extra;
  /// Attach an optimality certificate (core/lower_bound.hpp) to the winner:
  /// lower_bound + gap_pct stamped on the best solution.  Synchronized
  /// traces only; skipped silently otherwise.
  bool certify = false;
};

struct PortfolioEntry {
  std::string solver;
  Cost total = 0;
  std::chrono::microseconds elapsed{0};
  bool ok = false;    ///< solver returned a solution (did not throw)
  std::string error;  ///< exception text when !ok
};

struct PortfolioResult {
  MTSolution best;
  std::string winner;  ///< name of the member that produced `best`
  std::vector<PortfolioEntry> entries;  ///< line-up order
  std::chrono::microseconds elapsed{0};
};

/// Races the configured members on one instance.  Every member receives the
/// *same* SolveInstance by const reference — the shared precomputation is
/// paid once per race, never per racer.  Throws PreconditionError for
/// unknown member names or when every member throws (the instance itself is
/// infeasible for the whole line-up).  `cancel` is the caller's token; the
/// config deadline is linked under it, so either fires the race.
[[nodiscard]] PortfolioResult solve_portfolio(const SolveInstance& instance,
                                              const PortfolioConfig& config = {},
                                              const CancelToken& cancel = {});

/// Boundary convenience: builds the shared instance, then races on it.
[[nodiscard]] PortfolioResult solve_portfolio(const MultiTaskTrace& trace,
                                              const MachineSpec& machine,
                                              const EvalOptions& options = {},
                                              const PortfolioConfig& config = {},
                                              const CancelToken& cancel = {});

}  // namespace hyperrec::engine
