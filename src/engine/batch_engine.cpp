#include "engine/batch_engine.hpp"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>

namespace hyperrec::engine {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

const char* to_string(JobCacheOutcome outcome) noexcept {
  switch (outcome) {
    case JobCacheOutcome::kBypass: return "bypass";
    case JobCacheOutcome::kMiss: return "miss";
    case JobCacheOutcome::kHit: return "hit";
    case JobCacheOutcome::kCoalesced: return "coalesced";
  }
  return "bypass";
}

BatchEngine::BatchEngine(BatchEngineConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<ThreadPool>(config_.parallelism)) {}

BatchResult BatchEngine::solve(const std::vector<BatchJob>& jobs) const {
  BatchResult result;
  result.parallelism = pool_->thread_count();
  result.jobs.resize(jobs.size());
  const Clock::time_point batch_start = Clock::now();

  if (config_.stream.enabled && config_.stream.multiplex) {
    solve_multiplexed(jobs, result);
    result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - batch_start);
    return result;
  }

  // Fresh (uncached) solve; fills the job's winner/entries/warm_started —
  // only after the solve returns, so a throwing job keeps the empty
  // winner/flags the schema guarantees for failures.  This is the one place
  // a job's SolveInstance is built: every portfolio member and the
  // warm-start validator share its precomputation, while cache hits (which
  // never reach this lambda) stay at fingerprint-lookup cost and the custom
  // solver hook skips the build entirely.
  auto solve_fresh = [this](const BatchJob& job, const CancelToken& token,
                            JobResult& out) {
    if (config_.solver) {
      MTSolution fresh = config_.solver(job, token);
      out.winner = "custom";
      return fresh;
    }
    const SolveInstance instance(job.trace, job.machine, job.options);
    PortfolioConfig per_job = config_.portfolio;
    per_job.parallel = false;  // the job is the unit of parallelism
    per_job.pool = nullptr;
    per_job.deadline = std::chrono::milliseconds{0};  // already in token
    per_job.certify = config_.certify;
    bool warm_used = false;
    // A caller-preset portfolio warm_start takes precedence — appending the
    // cached incumbent next to it would trip the portfolio's one-seed
    // contract and fail the job.
    if (config_.warm_start && config_.cache != nullptr &&
        per_job.warm_start.empty()) {
      if (auto warm = config_.cache->warm_start_for(instance)) {
        per_job.warm_start.push_back(std::move(*warm));
        warm_used = true;
      }
    }
    PortfolioResult race = solve_portfolio(instance, per_job, token);
    out.warm_started = warm_used;
    out.winner = std::move(race.winner);
    out.entries = std::move(race.entries);
    return std::move(race.best);
  };

  // Streaming replay: feed the job's trace step-by-step through a
  // per-job StreamingEngine.  The per-window deadline is the portfolio
  // deadline; the stream as a whole is bounded only by the engine-wide
  // cancel (a per-job deadline would silently truncate long streams).
  auto solve_streamed = [this](const BatchJob& job, JobResult& out) {
    HYPERREC_ENSURE(job.trace.task_count() > 0 && job.trace.synchronized(),
                    "streaming replay needs a synchronized trace");
    out.streamed = true;
    streaming::StreamingConfig stream_config;
    stream_config.window = config_.stream.window;
    stream_config.trigger = config_.stream.trigger;
    stream_config.portfolio = config_.portfolio;
    stream_config.cache = config_.cache;
    stream_config.warm_start = config_.stream.warm_start;
    stream_config.cancel = CancelToken::linked(config_.cancel);
    streaming::StreamingEngine stream(job.machine, job.options, stream_config);
    const std::size_t n = job.trace.steps();
    for (std::size_t i = 0; i < n; ++i) {
      stream.append_step(job.trace.step(i));
    }
    stream.flush();
    // Window reports are diagnostics: publish them before asking for the
    // final solution, so a stream that never managed to publish a schedule
    // (cancelled, every window failed) still reports its per-window errors.
    out.windows = stream.windows();
    MTSolution solution = stream.current_solution();
    out.winner = "streaming";
    return solution;
  };

  auto run_job = [this, &jobs, &result, &solve_fresh,
                  &solve_streamed](std::size_t i) {
    const BatchJob& job = jobs[i];
    JobResult& out = result.jobs[i];
    out.index = i;
    out.name = job.name;
    if (config_.stream.enabled) {
      const Clock::time_point start = Clock::now();
      try {
        out.solution = solve_streamed(job, out);
        out.ok = true;
      } catch (const std::exception& error) {
        out.error = error.what();
      }
      out.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - start);
      return;
    }
    // Per-job token: fires on the engine-wide token or the per-job deadline,
    // whichever comes first.
    const CancelToken token =
        config_.portfolio.deadline.count() > 0
            ? CancelToken::linked(config_.cancel,
                                  Clock::now() + config_.portfolio.deadline)
            : CancelToken::linked(config_.cancel);
    const Clock::time_point start = Clock::now();
    bool consulted_cache = false;
    cache::CacheOutcome outcome = cache::CacheOutcome::kMiss;
    try {
      if (config_.cache != nullptr) {
        consulted_cache = true;
        // Key straight off the triple: a cache hit must stay at
        // encode-and-lookup cost, so the instance (trace copy + precompute)
        // is only built inside the compute closure, on a genuine miss.
        const cache::InstanceKey key =
            cache::make_instance_key(job.trace, job.machine, job.options);
        out.solution = config_.cache->get_or_compute_guarded(
            key,
            [&]() {
              // A token that is already expired at entry makes every
              // member return its no-work fallback (typically the
              // single-interval schedule) — serve that to this job and
              // its coalesced waiters, but never memoize it as the
              // instance's solution.  A per-job deadline firing *mid-run*
              // is the normal serving regime (incumbents are genuine
              // portfolio answers at the configured budget) and stays
              // cacheable; an engine-wide cancel observed by the end of
              // the solve means the whole batch was aborted, so that
              // result is rushed and is not memoized either — this also
              // closes the race where the cancel lands between the entry
              // check and the first member starting work.
              const bool degenerate = token.cancelled();
              MTSolution fresh = solve_fresh(job, token, out);
              const bool aborted =
                  config_.cancel.cancellable() && config_.cancel.cancelled();
              return cache::ComputeResult{std::move(fresh),
                                          !degenerate && !aborted};
            },
            &outcome);
      } else {
        out.solution = solve_fresh(job, token, out);
      }
      out.ok = true;
    } catch (const std::exception& error) {
      out.error = error.what();
    }
    if (consulted_cache) {
      // get_or_compute reports its path in `outcome` before computing or
      // waiting, so this mapping is valid even when the job failed — a
      // thrown solve is a "miss"/"coalesced", never a "bypass".
      switch (outcome) {
        case cache::CacheOutcome::kMiss:
          out.cache = JobCacheOutcome::kMiss;
          break;
        case cache::CacheOutcome::kHit:
          out.cache = JobCacheOutcome::kHit;
          break;
        case cache::CacheOutcome::kCoalesced:
          out.cache = JobCacheOutcome::kCoalesced;
          break;
      }
      if (out.ok && out.cache != JobCacheOutcome::kMiss) out.winner = "cache";
    }
    out.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - start);
  };

  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    futures.push_back(pool_->submit([&run_job, i]() { run_job(i); }));
  }
  for (auto& future : futures) future.get();

  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - batch_start);
  if (config_.cache != nullptr) {
    result.cache_enabled = true;
    result.cache_capacity = config_.cache->capacity();
    result.cache_size = config_.cache->size();
    result.cache_stats = config_.cache->stats();
  }
  return result;
}

void BatchEngine::solve_multiplexed(const std::vector<BatchJob>& jobs,
                                    BatchResult& result) const {
  streaming::MultiplexerConfig mux_config;
  mux_config.shards = config_.stream.shards;
  mux_config.pool = pool_.get();
  mux_config.cache = config_.cache;  // nullptr: the mux creates the shared one
  mux_config.cancel = config_.cancel;
  mux_config.stream.window = config_.stream.window;
  mux_config.stream.trigger = config_.stream.trigger;
  mux_config.stream.portfolio = config_.portfolio;
  mux_config.stream.warm_start = config_.stream.warm_start;
  streaming::StreamMultiplexer mux(std::move(mux_config));

  // One stream per job; a job the multiplexer cannot open (no tasks,
  // unsynchronized trace) fails alone, like any other per-job error.
  std::vector<std::optional<std::size_t>> streams(jobs.size());
  std::size_t max_steps = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.jobs[i].index = i;
    result.jobs[i].name = jobs[i].name;
    result.jobs[i].streamed = true;
    try {
      HYPERREC_ENSURE(
          jobs[i].trace.task_count() > 0 && jobs[i].trace.synchronized(),
          "streaming replay needs a synchronized trace");
      streams[i] = mux.open_stream(jobs[i].machine, jobs[i].options);
      max_steps = std::max(max_steps, jobs[i].trace.steps());
    } catch (const std::exception& error) {
      result.jobs[i].error = error.what();
    }
  }

  // Interleave appends round-robin across jobs: every stream is live at
  // once, so same-window jobs genuinely coalesce on the shared cache.
  for (std::size_t s = 0; s < max_steps; ++s) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (streams[i].has_value() && s < jobs[i].trace.steps()) {
        mux.append_step(*streams[i], jobs[i].trace.step(s));
      }
    }
  }
  mux.flush_all();
  mux.drain();

  const std::vector<streaming::StreamSummary> rows = mux.stream_summaries();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!streams[i].has_value()) continue;
    JobResult& out = result.jobs[i];
    const streaming::StreamingEngine& engine = mux.engine(*streams[i]);
    out.windows = engine.windows();
    if (rows[*streams[i]].poisoned) {
      const auto failure = mux.first_failure();
      out.error = failure.has_value() && failure->stream == *streams[i]
                      ? "stream poisoned: " + failure->what
                      : "stream poisoned";
      continue;
    }
    try {
      out.solution = engine.current_solution();
      out.winner = "streaming";
      out.ok = true;
    } catch (const std::exception& error) {
      out.error = error.what();
    }
  }

  result.fleet = mux.fleet_stats();
  result.fleet_streams = rows;
  result.cache_enabled = true;
  result.cache_capacity = mux.cache()->capacity();
  result.cache_size = mux.cache()->size();
  result.cache_stats = mux.cache()->stats();
}

}  // namespace hyperrec::engine
