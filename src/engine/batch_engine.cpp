#include "engine/batch_engine.hpp"

#include <future>
#include <utility>

namespace hyperrec::engine {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

BatchEngine::BatchEngine(BatchEngineConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<ThreadPool>(config_.parallelism)) {}

BatchResult BatchEngine::solve(const std::vector<BatchJob>& jobs) const {
  BatchResult result;
  result.parallelism = pool_->thread_count();
  result.jobs.resize(jobs.size());
  const Clock::time_point batch_start = Clock::now();

  auto run_job = [this, &jobs, &result](std::size_t i) {
    const BatchJob& job = jobs[i];
    JobResult& out = result.jobs[i];
    out.index = i;
    out.name = job.name;
    // Per-job token: fires on the engine-wide token or the per-job deadline,
    // whichever comes first.
    const CancelToken token =
        config_.portfolio.deadline.count() > 0
            ? CancelToken::linked(config_.cancel,
                                  Clock::now() + config_.portfolio.deadline)
            : CancelToken::linked(config_.cancel);
    const Clock::time_point start = Clock::now();
    try {
      if (config_.solver) {
        out.solution = config_.solver(job, token);
        out.winner = "custom";
      } else {
        PortfolioConfig per_job = config_.portfolio;
        per_job.parallel = false;  // the job is the unit of parallelism
        per_job.pool = nullptr;
        per_job.deadline = std::chrono::milliseconds{0};  // already in token
        PortfolioResult race =
            solve_portfolio(job.trace, job.machine, job.options, per_job,
                            token);
        out.solution = std::move(race.best);
        out.winner = std::move(race.winner);
        out.entries = std::move(race.entries);
      }
      out.ok = true;
    } catch (const std::exception& error) {
      out.error = error.what();
    }
    out.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - start);
  };

  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    futures.push_back(pool_->submit([&run_job, i]() { run_job(i); }));
  }
  for (auto& future : futures) future.get();

  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - batch_start);
  return result;
}

}  // namespace hyperrec::engine
