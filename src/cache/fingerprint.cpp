#include "cache/fingerprint.hpp"

#include <cstdio>

namespace hyperrec::cache {

namespace {

// FNV-1a-128 reference parameters: offset basis
// 0x6c62272e07bb014262b821756295c58d, prime 2^88 + 2^8 + 0x3b.
constexpr std::uint64_t kOffsetHi = 0x6c62272e07bb0142ull;
constexpr std::uint64_t kOffsetLo = 0x62b821756295c58dull;
constexpr std::uint64_t kPrimeLow = 0x13bull;   // low 64 bits of the prime
constexpr unsigned kPrimeShift = 88;            // the 2^88 term

void fnv1a_absorb(std::uint64_t& hi, std::uint64_t& lo, std::uint8_t byte) {
  lo ^= byte;
  // (hi, lo) * (2^88 + 0x13b) mod 2^128:
  //   = ((hi * 0x13b + carry(lo * 0x13b)) << 64 | low(lo * 0x13b))
  //     + (lo << 88 into the high word).
  // The 64×64→128 product lo * 0x13b is decomposed into 32-bit halves to
  // stay within ISO types (-Wpedantic rejects __int128).
  const std::uint64_t prod_low = (lo & 0xffffffffull) * kPrimeLow;
  const std::uint64_t prod_high = (lo >> 32) * kPrimeLow;
  const std::uint64_t new_lo = prod_low + (prod_high << 32);
  const std::uint64_t carry =
      (prod_high >> 32) + (new_lo < prod_low ? 1u : 0u);
  hi = hi * kPrimeLow + carry + (lo << (kPrimeShift - 64));
  lo = new_lo;
}

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(value & 0xffu));
    value >>= 8;
  }
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(value & 0xffu));
    value >>= 8;
  }
}

void append_trace(std::string& out, const MultiTaskTrace& trace) {
  put_u8(out, 'T');
  put_u64(out, trace.task_count());
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    const TaskTrace& task = trace.task(j);
    put_u64(out, task.local_universe());
    put_u64(out, task.size());
    for (std::size_t s = 0; s < task.size(); ++s) {
      const ContextRequirement& req = task.at(s);
      put_u32(out, req.private_demand);
      for (const DynamicBitset::Word word : req.local.words()) {
        put_u64(out, word);
      }
    }
  }
}

void append_machine(std::string& out, const MachineSpec& machine) {
  put_u8(out, 'M');
  put_u64(out, machine.task_count());
  for (const TaskSpec& task : machine.tasks) {
    put_u64(out, task.local_switches);
    put_u64(out, static_cast<std::uint64_t>(task.local_init));
  }
  put_u64(out, machine.private_global_units);
  put_u64(out, machine.public_context_size);
  put_u64(out, static_cast<std::uint64_t>(machine.global_init));
}

void append_options(std::string& out, const EvalOptions& options) {
  put_u8(out, 'O');
  put_u8(out, static_cast<std::uint8_t>(options.hyper_upload));
  put_u8(out, static_cast<std::uint8_t>(options.reconfig_upload));
  put_u8(out, options.changeover ? 1 : 0);
}

}  // namespace

std::string Fingerprint128::to_hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buffer, 32);
}

Fingerprint128 fingerprint_bytes(std::string_view bytes) {
  std::uint64_t hi = kOffsetHi;
  std::uint64_t lo = kOffsetLo;
  for (const char c : bytes) {
    fnv1a_absorb(hi, lo, static_cast<std::uint8_t>(c));
  }
  return {hi, lo};
}

std::string canonical_instance_key(const MultiTaskTrace& trace,
                                   const MachineSpec& machine,
                                   const EvalOptions& options) {
  std::string out = "hyperrec-instance-v1";
  out.push_back('\0');
  append_trace(out, trace);
  append_machine(out, machine);
  append_options(out, options);
  return out;
}

std::string canonical_shape_key(const MultiTaskTrace& trace) {
  std::string out = "hyperrec-shape-v1";
  out.push_back('\0');
  put_u64(out, trace.task_count());
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    put_u64(out, trace.task(j).size());
    put_u64(out, trace.task(j).local_universe());
  }
  return out;
}

InstanceKey make_instance_key(const MultiTaskTrace& trace,
                              const MachineSpec& machine,
                              const EvalOptions& options) {
  InstanceKey key;
  key.canonical = canonical_instance_key(trace, machine, options);
  key.fingerprint = fingerprint_bytes(key.canonical);
  key.shape = fingerprint_shape(trace);
  return key;
}

InstanceKey make_instance_key(const SolveInstance& instance) {
  return make_instance_key(instance.trace(), instance.machine(),
                           instance.options());
}

Fingerprint128 fingerprint_instance(const MultiTaskTrace& trace,
                                    const MachineSpec& machine,
                                    const EvalOptions& options) {
  return fingerprint_bytes(canonical_instance_key(trace, machine, options));
}

Fingerprint128 fingerprint_instance(const SolveInstance& instance) {
  return fingerprint_instance(instance.trace(), instance.machine(),
                              instance.options());
}

Fingerprint128 fingerprint_shape(const MultiTaskTrace& trace) {
  return fingerprint_bytes(canonical_shape_key(trace));
}

}  // namespace hyperrec::cache
