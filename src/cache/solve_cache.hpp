// Memoizing solve cache: sharded, mutex-striped LRU over instance
// fingerprints, with single-flight coalescing and a warm-start index.
//
// The serving-layer caching leg of the roadmap: real reconfigurable-hardware
// schedulers exploit workload repetition by prefetching and reusing
// previously computed configurations, and the paper's cost models are pure
// functions of (trace, machine, options) — so a solved schedule can be
// served again at hash-lookup cost.  Three cooperating mechanisms:
//
//   * LRU value cache — capacity-bounded, optional TTL, keyed by the
//     128-bit instance fingerprint.  Every hit re-verifies the full
//     canonical key bytes, so a fingerprint collision can never leak a
//     different instance's solution (it is counted in `collisions` and
//     treated as a miss).
//   * Single-flight — concurrent get_or_compute calls for the same key
//     coalesce onto one in-flight computation; duplicates within a batch
//     cost one solve plus a future wait.  A compute that throws propagates
//     the exception to every waiter and clears the flight so later calls
//     retry.
//   * Warm-start index — the most recent solution per instance *shape*
//     (task count, per-task steps and universe).  On a near-miss (same
//     shape, different content/costs) the cached schedule seeds the
//     iterative solvers via PortfolioConfig::warm_start, buying convergence
//     instead of a full restart.
//
// Sharding: entries are striped over power-of-two shards by fingerprint,
// each with its own mutex and LRU list; the capacity partitions exactly
// across shards (remainder spread one per shard), so size() never exceeds
// capacity() — eviction order is exact per shard, approximate globally.
// All methods are thread-safe; stats counters are relaxed atomics.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <vector>

#include "cache/fingerprint.hpp"
#include "core/solver.hpp"

namespace hyperrec::cache {

struct SolveCacheConfig {
  /// Total entry budget across all shards; must be at least 1.
  std::size_t capacity = 1024;
  /// Entries older than this are expired on access; 0 means no expiry.
  std::chrono::milliseconds ttl{0};
  /// Mutex stripes; rounded up to a power of two, clamped to [1, 64] and
  /// further so every shard holds at least 8 entries (shallow shards turn
  /// unlucky same-shard keys into permanent mutual eviction).
  std::size_t shards = 8;
  /// Warm-start index budget (one entry per instance shape); 0 disables
  /// the index.
  std::size_t warm_capacity = 64;
};

struct SolveCacheStats {
  std::uint64_t hits = 0;         ///< full-key-verified cache hits
  std::uint64_t misses = 0;       ///< lookups that had to (re)compute
  std::uint64_t coalesced = 0;    ///< waits served by an in-flight solve
  /// Piggybacked waits whose leader threw: the waiter rethrows and gets no
  /// solution, so it must not count as a successful coalesced hit.
  std::uint64_t coalesced_failures = 0;
  std::uint64_t insertions = 0;   ///< brand-new entries stored
  std::uint64_t refreshes = 0;    ///< re-stores over an existing live entry
  std::uint64_t evictions = 0;    ///< LRU capacity evictions
  std::uint64_t expirations = 0;  ///< TTL expiries observed on access
  std::uint64_t collisions = 0;   ///< fingerprint matched, canonical bytes did not
  std::uint64_t warm_hits = 0;    ///< warm-start schedules handed out
};

/// How get_or_compute satisfied a request.
enum class CacheOutcome : std::uint8_t { kMiss, kHit, kCoalesced };

/// Result of a get_or_compute compute callback.  `cacheable = false` hands
/// the solution to the caller and any coalesced waiters but keeps it out of
/// the cache — for answers that are valid but not authoritative, e.g. a
/// deadline-truncated incumbent that must not be memoized as the instance's
/// solution.
struct ComputeResult {
  MTSolution solution;
  bool cacheable = true;
};

class SolveCache {
 public:
  explicit SolveCache(SolveCacheConfig config = {});
  ~SolveCache();

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Full-key-verified lookup; counts a hit or a miss.
  [[nodiscard]] std::optional<MTSolution> lookup(const InstanceKey& key);

  /// Inserts (or refreshes) the solution for `key` and updates the
  /// warm-start index for its shape.
  void insert(const InstanceKey& key, const MTSolution& solution);

  /// Single-flight memoized solve: returns the cached solution on a hit,
  /// waits on an identical in-flight computation when one exists, and
  /// otherwise runs `compute` in the calling thread and caches its result.
  /// Exceptions from `compute` propagate to the caller and all coalesced
  /// waiters.  `outcome`, when non-null, reports which path was taken; it
  /// is written *before* computing or waiting, so it is valid even when
  /// the call exits by exception.
  [[nodiscard]] MTSolution get_or_compute(
      const InstanceKey& key, const std::function<MTSolution()>& compute,
      CacheOutcome* outcome = nullptr);

  /// As above, but the callback may mark its result non-cacheable (see
  /// ComputeResult) — waiters still receive it; the cache stays untouched.
  [[nodiscard]] MTSolution get_or_compute_guarded(
      const InstanceKey& key, const std::function<ComputeResult()>& compute,
      CacheOutcome* outcome = nullptr);

  /// Most recent cached schedule with `trace`'s shape, normalized for
  /// `machine` (global boundaries stripped or pinned to step 0), or nullopt.
  [[nodiscard]] std::optional<MultiTaskSchedule> warm_start_for(
      const MultiTaskTrace& trace, const MachineSpec& machine);

  /// Instance-keyed warm-start lookup (same semantics).
  [[nodiscard]] std::optional<MultiTaskSchedule> warm_start_for(
      const SolveInstance& instance);

  [[nodiscard]] SolveCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Single-flight computations currently registered across all shards —
  /// a quiesced serving stack must read 0 (the soak gate and /statz use
  /// this to prove flights never leak).
  [[nodiscard]] std::size_t inflight() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Shard;
  struct WarmIndex;

  Shard& shard_for(const Fingerprint128& fp) const noexcept;
  void update_warm_index(const InstanceKey& key, const MTSolution& solution);

  std::size_t capacity_ = 0;
  std::chrono::milliseconds ttl_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<WarmIndex> warm_;
  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace hyperrec::cache
