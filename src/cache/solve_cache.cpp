#include "cache/solve_cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <future>
#include <unordered_map>
#include <utility>

#include "support/thread_annotations.hpp"

namespace hyperrec::cache {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

struct SolveCache::Counters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> coalesced_failures{0};
  std::atomic<std::uint64_t> insertions{0};
  std::atomic<std::uint64_t> refreshes{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> expirations{0};
  std::atomic<std::uint64_t> collisions{0};
  std::atomic<std::uint64_t> warm_hits{0};
};

struct SolveCache::Shard {
  struct Entry {
    std::string canonical;
    MTSolution solution;
    Clock::time_point expires;
    std::list<Fingerprint128>::iterator lru_it;
  };
  struct Flight {
    std::string canonical;
    std::shared_future<MTSolution> future;
  };

  /// One lock class for all shards — stripes of one family never nest.
  mutable Mutex mutex{"SolveCache::shard"};
  /// This shard's slice of the total capacity (remainder spread one per
  /// shard, so Σ shard capacities == the configured capacity exactly).
  std::size_t capacity = 0;
  std::unordered_map<Fingerprint128, Entry, Fingerprint128Hash> map
      GUARDED_BY(mutex);
  /// Front = most recently used; erased entries are unlinked via lru_it.
  std::list<Fingerprint128> lru GUARDED_BY(mutex);
  std::unordered_map<Fingerprint128, std::shared_ptr<Flight>,
                     Fingerprint128Hash>
      inflight GUARDED_BY(mutex);

  /// Locked helper: finds a live, full-key-verified entry, expiring stale
  /// ones and counting forged/unlucky fingerprint collisions.
  Entry* find_live(const InstanceKey& key, Clock::time_point now,
                   Counters& counters) REQUIRES(mutex) {
    const auto it = map.find(key.fingerprint);
    if (it == map.end()) return nullptr;
    if (it->second.expires != Clock::time_point::max() &&
        now >= it->second.expires) {
      lru.erase(it->second.lru_it);
      map.erase(it);
      counters.expirations.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (it->second.canonical != key.canonical) {
      // Fingerprint collision: never serve another instance's solution.
      counters.collisions.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    return &it->second;
  }

  void touch(Entry& entry) REQUIRES(mutex) {
    lru.splice(lru.begin(), lru, entry.lru_it);
  }

  /// Locked helper: inserts or refreshes; evicts from the LRU tail when the
  /// shard is at capacity.
  void store(const InstanceKey& key, const MTSolution& solution,
             Clock::time_point expires, std::size_t shard_capacity,
             Counters& counters) REQUIRES(mutex) {
    const auto it = map.find(key.fingerprint);
    if (it != map.end()) {
      if (it->second.canonical != key.canonical) {
        // Fingerprint collision on insert: keep the incumbent — replacing
        // it would let a colliding instance evict another's entry, and the
        // new value simply stays uncached (the same never-serve-wrong rule
        // the read side enforces).
        counters.collisions.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      it->second.solution = solution;
      it->second.expires = expires;
      touch(it->second);
      // A refresh of a live entry is not an insertion: the fleet metrics
      // read insertions as "distinct window instances stored", and
      // re-storing the same key must not inflate that.
      counters.refreshes.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    while (map.size() >= shard_capacity && !lru.empty()) {
      const Fingerprint128 victim = lru.back();
      lru.pop_back();
      map.erase(victim);
      counters.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    lru.push_front(key.fingerprint);
    Entry entry{key.canonical, solution, expires, lru.begin()};
    map.emplace(key.fingerprint, std::move(entry));
    counters.insertions.fetch_add(1, std::memory_order_relaxed);
  }
};

struct SolveCache::WarmIndex {
  struct Entry {
    MultiTaskSchedule schedule;
    std::list<Fingerprint128>::iterator lru_it;
  };

  mutable Mutex mutex{"SolveCache::warm"};
  std::unordered_map<Fingerprint128, Entry, Fingerprint128Hash> map
      GUARDED_BY(mutex);
  std::list<Fingerprint128> lru GUARDED_BY(mutex);
  std::size_t capacity = 0;

  void store(const Fingerprint128& shape, const MultiTaskSchedule& schedule) {
    const MutexLock lock(mutex);
    const auto it = map.find(shape);
    if (it != map.end()) {
      it->second.schedule = schedule;
      lru.splice(lru.begin(), lru, it->second.lru_it);
      return;
    }
    while (map.size() >= capacity && !lru.empty()) {
      map.erase(lru.back());
      lru.pop_back();
    }
    lru.push_front(shape);
    map.emplace(shape, Entry{schedule, lru.begin()});
  }

  std::optional<MultiTaskSchedule> find(const Fingerprint128& shape) {
    const MutexLock lock(mutex);
    const auto it = map.find(shape);
    if (it == map.end()) return std::nullopt;
    lru.splice(lru.begin(), lru, it->second.lru_it);
    return it->second.schedule;
  }
};

SolveCache::SolveCache(SolveCacheConfig config)
    : capacity_(config.capacity), ttl_(config.ttl) {
  HYPERREC_ENSURE(config.capacity >= 1, "cache capacity must be at least 1");
  std::size_t shard_count = std::bit_ceil(
      config.shards == 0 ? std::size_t{1}
                         : (config.shards > 64 ? std::size_t{64}
                                               : config.shards));
  // Keep every shard at least kMinShardDepth entries deep (largest power
  // of two that allows it): hashing is oblivious to shard boundaries, so
  // 1-entry shards make two keys in one shard evict each other forever
  // while other shards sit empty.
  constexpr std::size_t kMinShardDepth = 8;
  const std::size_t max_shards =
      std::bit_floor(std::max<std::size_t>(capacity_ / kMinShardDepth, 1));
  if (shard_count > max_shards) shard_count = max_shards;
  // Partition the budget exactly: base entries per shard, remainder spread
  // one per shard — size() can never exceed capacity().
  const std::size_t base = capacity_ / shard_count;
  const std::size_t remainder = capacity_ % shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (i < remainder ? 1 : 0);
  }
  if (config.warm_capacity > 0) {
    warm_ = std::make_unique<WarmIndex>();
    warm_->capacity = config.warm_capacity;
  }
  counters_ = std::make_unique<Counters>();
}

SolveCache::~SolveCache() = default;

SolveCache::Shard& SolveCache::shard_for(
    const Fingerprint128& fp) const noexcept {
  return *shards_[fp.lo & (shards_.size() - 1)];
}

std::optional<MTSolution> SolveCache::lookup(const InstanceKey& key) {
  Shard& shard = shard_for(key.fingerprint);
  const MutexLock lock(shard.mutex);
  Shard::Entry* entry = shard.find_live(key, Clock::now(), *counters_);
  if (entry == nullptr) {
    counters_->misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.touch(*entry);
  counters_->hits.fetch_add(1, std::memory_order_relaxed);
  return entry->solution;
}

void SolveCache::insert(const InstanceKey& key, const MTSolution& solution) {
  const Clock::time_point expires = ttl_.count() > 0
                                        ? Clock::now() + ttl_
                                        : Clock::time_point::max();
  Shard& shard = shard_for(key.fingerprint);
  {
    const MutexLock lock(shard.mutex);
    shard.store(key, solution, expires, shard.capacity, *counters_);
  }
  update_warm_index(key, solution);
}

MTSolution SolveCache::get_or_compute(
    const InstanceKey& key, const std::function<MTSolution()>& compute,
    CacheOutcome* outcome) {
  return get_or_compute_guarded(
      key, [&compute]() { return ComputeResult{compute(), true}; }, outcome);
}

MTSolution SolveCache::get_or_compute_guarded(
    const InstanceKey& key, const std::function<ComputeResult()>& compute,
    CacheOutcome* outcome) {
  Shard& shard = shard_for(key.fingerprint);
  std::shared_ptr<Shard::Flight> flight;
  std::promise<MTSolution> promise;
  bool leader = false;
  {
    const MutexLock lock(shard.mutex);
    Shard::Entry* entry = shard.find_live(key, Clock::now(), *counters_);
    if (entry != nullptr) {
      shard.touch(*entry);
      counters_->hits.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) *outcome = CacheOutcome::kHit;
      return entry->solution;
    }
    const auto in_it = shard.inflight.find(key.fingerprint);
    if (in_it != shard.inflight.end() &&
        in_it->second->canonical == key.canonical) {
      flight = in_it->second;
    } else if (in_it == shard.inflight.end()) {
      // Become the leader: register the flight before unlocking so every
      // concurrent duplicate coalesces onto it.
      flight = std::make_shared<Shard::Flight>();
      flight->canonical = key.canonical;
      flight->future = promise.get_future().share();
      shard.inflight.emplace(key.fingerprint, flight);
      leader = true;
    }
    // else: an in-flight computation for a *different* canonical key shares
    // the fingerprint (forged collision) — compute independently below
    // without touching its flight.
  }

  if (!leader && flight != nullptr) {
    // `outcome` is still written before the wait (the documented exits-by-
    // exception contract), but the *stats* record the flight's fate: a
    // leader that throws must not leave its waiters counted as successful
    // coalesced hits.
    if (outcome != nullptr) *outcome = CacheOutcome::kCoalesced;
    try {
      MTSolution coalesced = flight->future.get();  // rethrows the leader's
      counters_->coalesced.fetch_add(1, std::memory_order_relaxed);
      return coalesced;
    } catch (...) {
      counters_->coalesced_failures.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }

  counters_->misses.fetch_add(1, std::memory_order_relaxed);
  if (outcome != nullptr) *outcome = CacheOutcome::kMiss;
  ComputeResult result;
  try {
    result = compute();
  } catch (...) {
    if (leader) {
      promise.set_exception(std::current_exception());
      const MutexLock lock(shard.mutex);
      shard.inflight.erase(key.fingerprint);
    }
    throw;
  }
  if (leader) {
    promise.set_value(result.solution);
    const Clock::time_point expires = ttl_.count() > 0
                                          ? Clock::now() + ttl_
                                          : Clock::time_point::max();
    {
      const MutexLock lock(shard.mutex);
      shard.inflight.erase(key.fingerprint);
      if (result.cacheable) {
        shard.store(key, result.solution, expires, shard.capacity,
                    *counters_);
      }
    }
    if (result.cacheable) update_warm_index(key, result.solution);
  }
  return result.solution;
}

std::optional<MultiTaskSchedule> SolveCache::warm_start_for(
    const MultiTaskTrace& trace, const MachineSpec& machine) {
  if (warm_ == nullptr) return std::nullopt;
  std::optional<MultiTaskSchedule> found =
      warm_->find(fingerprint_shape(trace));
  if (!found.has_value()) return std::nullopt;
  // Normalize for the requesting machine: the stored schedule's global
  // boundaries belonged to *its* machine.  Every partition has a boundary
  // at step 0, so {0} is always a valid global boundary set.
  found->global_boundaries.clear();
  if (machine.has_global_resources()) found->global_boundaries.push_back(0);
  try {
    found->validate(trace.task_count(), trace.steps());
  } catch (const std::exception&) {
    // Shape-fingerprint collision or non-synchronized trace: no warm start.
    return std::nullopt;
  }
  counters_->warm_hits.fetch_add(1, std::memory_order_relaxed);
  return found;
}

std::optional<MultiTaskSchedule> SolveCache::warm_start_for(
    const SolveInstance& instance) {
  return warm_start_for(instance.trace(), instance.machine());
}

void SolveCache::update_warm_index(const InstanceKey& key,
                                   const MTSolution& solution) {
  if (warm_ == nullptr) return;
  warm_->store(key.shape, solution.schedule);
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats out;
  out.hits = counters_->hits.load(std::memory_order_relaxed);
  out.misses = counters_->misses.load(std::memory_order_relaxed);
  out.coalesced = counters_->coalesced.load(std::memory_order_relaxed);
  out.coalesced_failures =
      counters_->coalesced_failures.load(std::memory_order_relaxed);
  out.insertions = counters_->insertions.load(std::memory_order_relaxed);
  out.refreshes = counters_->refreshes.load(std::memory_order_relaxed);
  out.evictions = counters_->evictions.load(std::memory_order_relaxed);
  out.expirations = counters_->expirations.load(std::memory_order_relaxed);
  out.collisions = counters_->collisions.load(std::memory_order_relaxed);
  out.warm_hits = counters_->warm_hits.load(std::memory_order_relaxed);
  return out;
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

std::size_t SolveCache::inflight() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mutex);
    total += shard->inflight.size();
  }
  return total;
}

}  // namespace hyperrec::cache
