// Stable 128-bit instance fingerprints for the solve cache.
//
// The paper's cost models (§2, §4) are pure functions of (trace, machine,
// options), so solve results are safely memoizable once instances can be
// identified.  This module canonicalizes an instance into a byte string —
// tagged sections, fixed-width little-endian integers, bitset payloads as
// raw words (the tail past size() is kept zero by every mutator) — and
// hashes it with a hand-rolled FNV-1a-128 (no third-party dependency; the
// container has no network for FetchContent).
//
// The canonical bytes are retained alongside the fingerprint: SolveCache
// compares them on every hit, so even a forged or astronomically unlucky
// 128-bit collision can never return the wrong instance's solution.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "model/cost_switch.hpp"
#include "model/instance.hpp"
#include "model/machine.hpp"
#include "model/trace.hpp"

namespace hyperrec::cache {

struct Fingerprint128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint128&) const noexcept =
      default;

  /// 32 lowercase hex characters, hi first — for diagnostics and logs.
  [[nodiscard]] std::string to_hex() const;
};

struct Fingerprint128Hash {
  [[nodiscard]] std::size_t operator()(
      const Fingerprint128& fp) const noexcept {
    return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// FNV-1a-128 over arbitrary bytes (offset basis and prime per the FNV
/// reference parameters; the 128-bit multiply is decomposed into 64-bit
/// halves).
[[nodiscard]] Fingerprint128 fingerprint_bytes(std::string_view bytes);

/// Canonical byte encoding of a solve instance.  Injective by construction:
/// every field of the trace (universes, step counts, local words, private
/// demands), the machine (task specs, global resources, init costs) and the
/// options enters at a fixed, length-prefixed position.
[[nodiscard]] std::string canonical_instance_key(const MultiTaskTrace& trace,
                                                 const MachineSpec& machine,
                                                 const EvalOptions& options);

/// Canonical byte encoding of an instance's *shape* only: task count and
/// per-task (steps, universe).  Two instances with equal shape fingerprints
/// can exchange schedules — the warm-start index keys on this.
[[nodiscard]] std::string canonical_shape_key(const MultiTaskTrace& trace);

/// Fingerprint + canonical bytes + shape fingerprint of one instance; the
/// unit the SolveCache is keyed on.
struct InstanceKey {
  Fingerprint128 fingerprint;
  Fingerprint128 shape;
  std::string canonical;
};

[[nodiscard]] InstanceKey make_instance_key(const MultiTaskTrace& trace,
                                            const MachineSpec& machine,
                                            const EvalOptions& options);

/// Fingerprints a SolveInstance — the one encoding path the engine/cache
/// stack uses: the instance already carries the validated triple, so the
/// key is derived from exactly the bytes the solvers consumed.
[[nodiscard]] InstanceKey make_instance_key(const SolveInstance& instance);

[[nodiscard]] Fingerprint128 fingerprint_instance(const MultiTaskTrace& trace,
                                                  const MachineSpec& machine,
                                                  const EvalOptions& options);

[[nodiscard]] Fingerprint128 fingerprint_instance(const SolveInstance& instance);

[[nodiscard]] Fingerprint128 fingerprint_shape(const MultiTaskTrace& trace);

}  // namespace hyperrec::cache
