// Online (hyper)reconfiguration scheduling.
//
// The paper observes that "the actual demand of a computation during runtime
// might depend on the data and cannot be determined exactly in advance" —
// offline DPs then operate on worst-case bounds.  This module provides the
// complementary *online* controller: it sees the context requirements one
// step at a time (no lookahead) and decides on the fly when to
// hyperreconfigure.
//
// Policy: rent-or-buy (ski rental).  While the current hypercontext h
// satisfies the requirements, the controller "rents": each step wastes
// |h| − |c_t| switch-loads compared to a perfectly fitted hypercontext.
// When the accumulated waste exceeds α·v (v = hyperreconfiguration cost) the
// controller "buys" a re-fit: a new minimal hypercontext covering the recent
// window.  A requirement outside h forces an immediate re-fit.  The classic
// ski-rental argument bounds the waste paid between re-fits by α·v + max
// step excess, giving a constant-competitive trade-off against an adversary
// that must itself pay v per hypercontext change.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"

namespace hyperrec::online {

struct RentOrBuyConfig {
  /// Waste threshold multiplier: re-fit when waste ≥ alpha·v.
  double alpha = 1.0;
  /// The new hypercontext covers the union of the last `fit_window`
  /// requirements (including the current one) — a little hysteresis so a
  /// single narrow step does not shrink the hypercontext too eagerly.
  std::size_t fit_window = 4;
};

/// Single-task online controller.  Feed requirements in step order.
class RentOrBuyScheduler {
 public:
  RentOrBuyScheduler(std::size_t universe, Cost hyper_init,
                     RentOrBuyConfig config = {});

  /// Processes one step; returns true iff a hyperreconfiguration was
  /// performed immediately before it.
  bool step(const ContextRequirement& requirement);

  [[nodiscard]] Cost total_cost() const noexcept { return total_; }
  [[nodiscard]] std::size_t hyper_count() const noexcept {
    return boundaries_.size();
  }
  [[nodiscard]] const std::vector<std::size_t>& boundaries() const noexcept {
    return boundaries_;
  }
  [[nodiscard]] const DynamicBitset& hypercontext() const noexcept {
    return current_;
  }
  [[nodiscard]] std::size_t steps_seen() const noexcept { return step_; }

 private:
  /// Minimal hypercontext covering the recent window plus `requirement`.
  struct FittedContext {
    DynamicBitset local;
    std::uint32_t private_avail;
  };
  [[nodiscard]] FittedContext fitted_context(
      const ContextRequirement& requirement) const;
  void refit(FittedContext fit);

  std::size_t universe_;
  Cost hyper_init_;
  RentOrBuyConfig config_;

  DynamicBitset current_;
  std::uint32_t current_priv_ = 0;
  double waste_ = 0.0;
  std::deque<ContextRequirement> window_;
  std::vector<std::size_t> boundaries_;
  Cost total_ = 0;
  std::size_t step_ = 0;
  bool started_ = false;
};

/// Runs the controller over a full trace and returns the induced partition
/// (for evaluation under the offline cost models).
[[nodiscard]] Partition run_online_single(const TaskTrace& trace,
                                          Cost hyper_init,
                                          RentOrBuyConfig config = {});

/// Per-task online controllers for a synchronized multi-task machine; the
/// resulting schedule is evaluated with the §4.2 evaluator.
[[nodiscard]] MultiTaskSchedule run_online_multi(const MultiTaskTrace& trace,
                                                 const MachineSpec& machine,
                                                 RentOrBuyConfig config = {});

}  // namespace hyperrec::online
