#include "online/rent_or_buy.hpp"

#include "support/ensure.hpp"

namespace hyperrec::online {

RentOrBuyScheduler::RentOrBuyScheduler(std::size_t universe, Cost hyper_init,
                                       RentOrBuyConfig config)
    : universe_(universe),
      hyper_init_(hyper_init),
      config_(config),
      current_(universe) {
  HYPERREC_ENSURE(config_.fit_window >= 1, "fit window must be at least 1");
  HYPERREC_ENSURE(config_.alpha >= 0.0, "alpha must be non-negative");
}

RentOrBuyScheduler::FittedContext RentOrBuyScheduler::fitted_context(
    const ContextRequirement& requirement) const {
  FittedContext fit{DynamicBitset(universe_), 0};
  for (const ContextRequirement& past : window_) {
    fit.local |= past.local;
    fit.private_avail = std::max(fit.private_avail, past.private_demand);
  }
  fit.local |= requirement.local;
  fit.private_avail = std::max(fit.private_avail, requirement.private_demand);
  return fit;
}

void RentOrBuyScheduler::refit(FittedContext fit) {
  current_ = std::move(fit.local);
  current_priv_ = fit.private_avail;
  waste_ = 0.0;
  boundaries_.push_back(step_);
  total_ += hyper_init_;
}

bool RentOrBuyScheduler::step(const ContextRequirement& requirement) {
  HYPERREC_ENSURE(requirement.local.size() == universe_,
                  "requirement universe mismatch");
  bool hyperreconfigured = false;

  const bool covered = started_ &&
                       requirement.local.subset_of(current_) &&
                       requirement.private_demand <= current_priv_;
  if (!covered) {
    // Mandatory re-fit: the hypercontext cannot serve this step.  On the
    // very first step this is the boundary-at-0 hyperreconfiguration every
    // partition carries.
    refit(fitted_context(requirement));
    hyperreconfigured = true;
    started_ = true;
  } else {
    const double excess =
        static_cast<double>(current_.count() + current_priv_) -
        static_cast<double>(requirement.local.count() +
                            requirement.private_demand);
    waste_ += excess;
    if (waste_ >= config_.alpha * static_cast<double>(hyper_init_) &&
        excess > 0.0) {
      FittedContext fit = fitted_context(requirement);
      if (fit.local == current_ && fit.private_avail == current_priv_) {
        // A re-fit would reproduce the current hypercontext exactly (the
        // window still needs everything): buying gains nothing, so restart
        // the rental clock instead of churning a paid refit every step —
        // with alpha = 0 this is what keeps covered steps from each
        // triggering a no-op hyperreconfiguration.
        waste_ = 0.0;
      } else {
        refit(std::move(fit));
        hyperreconfigured = true;
      }
    }
  }

  total_ += static_cast<Cost>(current_.count()) +
            static_cast<Cost>(current_priv_);
  window_.push_back(requirement);
  if (window_.size() > config_.fit_window) window_.pop_front();
  ++step_;
  return hyperreconfigured;
}

Partition run_online_single(const TaskTrace& trace, Cost hyper_init,
                            RentOrBuyConfig config) {
  HYPERREC_ENSURE(trace.size() > 0, "empty trace");
  RentOrBuyScheduler scheduler(trace.local_universe(), hyper_init, config);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    scheduler.step(trace.at(i));
  }
  // Boundary-at-0 invariant: step 0 always performs the mandatory first
  // re-fit, so the boundaries are valid partition starts as-is.
  HYPERREC_ASSERT(!scheduler.boundaries().empty() &&
                  scheduler.boundaries().front() == 0);
  return Partition::from_starts(scheduler.boundaries(), trace.size());
}

MultiTaskSchedule run_online_multi(const MultiTaskTrace& trace,
                                   const MachineSpec& machine,
                                   RentOrBuyConfig config) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(trace.synchronized(),
                  "online multi-task control needs equal-length traces");
  MultiTaskSchedule schedule;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    schedule.tasks.push_back(run_online_single(
        trace.task(j), machine.tasks[j].local_init, config));
  }
  if (machine.has_global_resources()) schedule.global_boundaries.push_back(0);
  return schedule;
}

}  // namespace hyperrec::online
