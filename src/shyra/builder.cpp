#include "shyra/builder.hpp"

#include "support/ensure.hpp"

namespace hyperrec::shyra {

std::uint8_t tt_const(bool value) { return value ? 0xFF : 0x00; }

ConfigBuilder& ConfigBuilder::lut1(std::uint8_t tt, std::uint8_t in0,
                                   std::uint8_t in1, std::uint8_t in2,
                                   std::uint8_t dest) {
  config_.lut_tt[0] = tt;
  config_.mux_sel[0] = in0;
  config_.mux_sel[1] = in1;
  config_.mux_sel[2] = in2;
  config_.demux_sel[0] = dest;
  return *this;
}

ConfigBuilder& ConfigBuilder::lut2(std::uint8_t tt, std::uint8_t in0,
                                   std::uint8_t in1, std::uint8_t in2,
                                   std::uint8_t dest) {
  config_.lut_tt[1] = tt;
  config_.mux_sel[3] = in0;
  config_.mux_sel[4] = in1;
  config_.mux_sel[5] = in2;
  config_.demux_sel[1] = dest;
  return *this;
}

ShyraConfig ConfigBuilder::build() const {
  config_.validate();
  return config_;
}

}  // namespace hyperrec::shyra
