// SHyRA configuration word (paper §6, Figure 1).
//
// The Simple HYperReconfigurable Architecture has four reconfigurable
// components with 48 configuration bits total:
//
//   component  | field                         | bits      | task
//   -----------+-------------------------------+-----------+------
//   LUT1       | 8-bit truth table             |  0 –  7   | T1 (l=8)
//   LUT2       | 8-bit truth table             |  8 – 15   | T2 (l=8)
//   DeMUX 2:10 | 2 destination selectors ×4 b  | 16 – 23   | T3 (l=8)
//   MUX 10:6   | 6 source selectors ×4 b       | 24 – 47   | T4 (l=24)
//
// MUX inputs 0–2 feed LUT1's inputs, 3–5 feed LUT2's.  DeMUX selector k
// routes LUT k's output to a register; the reserved value kNoWrite disables
// the write (the LUT is unused that cycle).
//
// The *context requirement* of a cycle (what must be reconfigurable) is the
// set of bits that influence the cycle's behaviour: the truth table and
// destination selector of every used LUT, plus the source selectors of the
// truth table's live inputs.  Unused components contribute nothing — this
// is exactly the "unit unused" notion of Figure 2.
#pragma once

#include <array>
#include <cstdint>

#include "support/bitset.hpp"

namespace hyperrec::shyra {

inline constexpr std::size_t kRegisters = 10;
inline constexpr std::size_t kLuts = 2;
inline constexpr std::size_t kLutInputs = 3;
inline constexpr std::size_t kMuxInputs = 6;
inline constexpr std::size_t kConfigBits = 48;

/// Per-task configuration-bit counts: LUT1, LUT2, DeMUX, MUX.
inline constexpr std::array<std::size_t, 4> kTaskBits = {8, 8, 8, 24};

struct ShyraConfig {
  static constexpr std::uint8_t kNoWrite = 15;

  std::array<std::uint8_t, kLuts> lut_tt{0, 0};
  std::array<std::uint8_t, kMuxInputs> mux_sel{0, 0, 0, 0, 0, 0};
  std::array<std::uint8_t, kLuts> demux_sel{kNoWrite, kNoWrite};

  /// Field validity: selectors address existing registers (or kNoWrite for
  /// the demux).  Throws PreconditionError on violation.
  void validate() const;

  /// Packs into the 48-bit layout documented above.
  [[nodiscard]] std::uint64_t pack() const;

  /// Inverse of pack(); validates the unpacked fields.
  [[nodiscard]] static ShyraConfig unpack(std::uint64_t word);

  /// Hamming distance between packed configurations — the number of
  /// configuration bits that differ (used by changeover-cost studies).
  [[nodiscard]] std::size_t distance(const ShyraConfig& other) const;

  [[nodiscard]] bool operator==(const ShyraConfig& other) const = default;
};

/// Which parts of a configuration are live in a cycle.
struct ConfigUsage {
  std::array<bool, kLuts> lut_used{false, false};
  /// live[k][i]: LUT k's truth table actually depends on its input i.
  std::array<std::array<bool, kLutInputs>, kLuts> input_live{};
};

/// Analyses truth-table input dependence and write-enables.
[[nodiscard]] ConfigUsage analyze_usage(const ShyraConfig& config);

/// The cycle's context requirement over the full 48-bit universe.
[[nodiscard]] DynamicBitset context_requirement(const ShyraConfig& config);

/// The cycle's context requirement split per task, each over the task's
/// local universe (8, 8, 8, 24 bits).
[[nodiscard]] std::array<DynamicBitset, 4> per_task_requirement(
    const ShyraConfig& config);

}  // namespace hyperrec::shyra
