// Cycle-level simulator of the SHyRA datapath (paper §6, Figure 1).
//
// A cycle applies one configuration: the 10:6 MUX reads six register values,
// the two 3-input LUTs evaluate their truth tables, and the 2:10 DeMUX
// writes enabled outputs back into the register file.  All reads observe the
// register state from before the cycle (synchronous semantics), so a LUT can
// read and rewrite the same register within one cycle.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "shyra/config.hpp"

namespace hyperrec::shyra {

class ShyraMachine {
 public:
  ShyraMachine() = default;

  [[nodiscard]] bool reg(std::size_t index) const;
  void set_reg(std::size_t index, bool value);

  /// Reads registers [first, first+width) as an unsigned value, LSB first.
  [[nodiscard]] std::uint32_t read_value(std::size_t first,
                                         std::size_t width) const;

  /// Writes `value` into registers [first, first+width), LSB first.
  void write_value(std::size_t first, std::size_t width, std::uint32_t value);

  /// Executes one reconfiguration + compute cycle.
  void step(const ShyraConfig& config);

  /// Executes a straight-line program; returns the number of cycles run.
  std::size_t run(const std::vector<ShyraConfig>& program);

  [[nodiscard]] const std::array<bool, kRegisters>& registers() const noexcept {
    return regs_;
  }

 private:
  std::array<bool, kRegisters> regs_{};
};

}  // namespace hyperrec::shyra
