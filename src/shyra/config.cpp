#include "shyra/config.hpp"

#include "support/bitset_kernels.hpp"
#include "support/ensure.hpp"

namespace hyperrec::shyra {

void ShyraConfig::validate() const {
  for (const std::uint8_t sel : mux_sel) {
    HYPERREC_ENSURE(sel < kRegisters, "MUX selector addresses no register");
  }
  for (const std::uint8_t sel : demux_sel) {
    HYPERREC_ENSURE(sel < kRegisters || sel == kNoWrite,
                    "DeMUX selector addresses no register");
  }
  if (demux_sel[0] != kNoWrite && demux_sel[1] != kNoWrite) {
    HYPERREC_ENSURE(demux_sel[0] != demux_sel[1],
                    "both LUT outputs write the same register");
  }
}

std::uint64_t ShyraConfig::pack() const {
  std::uint64_t word = 0;
  word |= static_cast<std::uint64_t>(lut_tt[0]);
  word |= static_cast<std::uint64_t>(lut_tt[1]) << 8;
  word |= static_cast<std::uint64_t>(demux_sel[0] & 0xF) << 16;
  word |= static_cast<std::uint64_t>(demux_sel[1] & 0xF) << 20;
  for (std::size_t i = 0; i < kMuxInputs; ++i) {
    word |= static_cast<std::uint64_t>(mux_sel[i] & 0xF) << (24 + 4 * i);
  }
  return word;
}

ShyraConfig ShyraConfig::unpack(std::uint64_t word) {
  HYPERREC_ENSURE((word >> kConfigBits) == 0,
                  "configuration word uses more than 48 bits");
  ShyraConfig config;
  config.lut_tt[0] = static_cast<std::uint8_t>(word & 0xFF);
  config.lut_tt[1] = static_cast<std::uint8_t>((word >> 8) & 0xFF);
  config.demux_sel[0] = static_cast<std::uint8_t>((word >> 16) & 0xF);
  config.demux_sel[1] = static_cast<std::uint8_t>((word >> 20) & 0xF);
  for (std::size_t i = 0; i < kMuxInputs; ++i) {
    config.mux_sel[i] = static_cast<std::uint8_t>((word >> (24 + 4 * i)) & 0xF);
  }
  config.validate();
  return config;
}

std::size_t ShyraConfig::distance(const ShyraConfig& other) const {
  return kernels::popcount_word(pack() ^ other.pack());
}

ConfigUsage analyze_usage(const ShyraConfig& config) {
  ConfigUsage usage;
  for (std::size_t k = 0; k < kLuts; ++k) {
    usage.lut_used[k] = config.demux_sel[k] != ShyraConfig::kNoWrite;
    if (!usage.lut_used[k]) continue;
    const std::uint8_t tt = config.lut_tt[k];
    for (std::size_t i = 0; i < kLutInputs; ++i) {
      for (std::uint8_t address = 0; address < 8 && !usage.input_live[k][i];
           ++address) {
        const std::uint8_t flipped =
            address ^ static_cast<std::uint8_t>(1u << i);
        if (((tt >> address) & 1u) != ((tt >> flipped) & 1u)) {
          usage.input_live[k][i] = true;
        }
      }
    }
  }
  return usage;
}

DynamicBitset context_requirement(const ShyraConfig& config) {
  const ConfigUsage usage = analyze_usage(config);
  DynamicBitset bits(kConfigBits);
  for (std::size_t k = 0; k < kLuts; ++k) {
    if (!usage.lut_used[k]) continue;
    bits.set_range(8 * k, 8 * k + 8);        // truth table
    bits.set_range(16 + 4 * k, 16 + 4 * k + 4);  // demux selector
    for (std::size_t i = 0; i < kLutInputs; ++i) {
      if (usage.input_live[k][i]) {
        const std::size_t sel = kLutInputs * k + i;
        bits.set_range(24 + 4 * sel, 24 + 4 * sel + 4);  // mux selector
      }
    }
  }
  return bits;
}

std::array<DynamicBitset, 4> per_task_requirement(const ShyraConfig& config) {
  const DynamicBitset full = context_requirement(config);
  std::array<DynamicBitset, 4> split = {
      DynamicBitset(kTaskBits[0]), DynamicBitset(kTaskBits[1]),
      DynamicBitset(kTaskBits[2]), DynamicBitset(kTaskBits[3])};
  full.for_each_set([&split](std::size_t pos) {
    if (pos < 8) {
      split[0].set(pos);
    } else if (pos < 16) {
      split[1].set(pos - 8);
    } else if (pos < 24) {
      split[2].set(pos - 16);
    } else {
      split[3].set(pos - 24);
    }
  });
  return split;
}

}  // namespace hyperrec::shyra
