// A second test application for SHyRA: a 4-bit Fibonacci LFSR
// (x⁴ + x³ + 1, period 15 for any non-zero seed).
//
// The counter of §6 is compare-heavy (wide MUX requirements, single-LUT
// cycles); the LFSR is shift-heavy (copy chains, dual-LUT cycles) and thus
// produces a context-requirement trace with a different per-component
// profile — a useful second data point for the cost-model studies and a
// further functional exercise of the datapath simulator.
//
// Register map: r0..r3 LFSR state (r3 = newest bit), r8 feedback scratch.
// One LFSR step is time-partitioned into 3 cycles:
//   1  r8 := r3 XOR r2          (feedback taps)        LUT1
//      r3 := r2                 (begin shift)          LUT2
//   2  r2 := r1;  r1 := r0      (shift middle)         LUT1 + LUT2
//   3  r0 := r8                 (insert feedback)      LUT1
#pragma once

#include <cstdint>
#include <vector>

#include "shyra/config.hpp"
#include "shyra/machine.hpp"

namespace hyperrec::shyra {

class LfsrApp {
 public:
  /// `seed` is the initial 4-bit state (must be non-zero for the maximal
  /// period; zero is rejected).
  explicit LfsrApp(std::uint8_t seed);

  struct RunResult {
    std::vector<ShyraConfig> trace;
    /// State after every LFSR step (length = steps).
    std::vector<std::uint8_t> states;
  };

  /// The 3 configurations of one LFSR step.
  [[nodiscard]] static std::vector<ShyraConfig> step_program();

  /// Software reference: one LFSR transition.
  [[nodiscard]] static std::uint8_t next_state(std::uint8_t state);

  /// Runs `steps` LFSR steps on a fresh machine.
  [[nodiscard]] RunResult run(std::size_t steps) const;

  [[nodiscard]] std::uint8_t seed() const noexcept { return seed_; }

 private:
  std::uint8_t seed_;
};

}  // namespace hyperrec::shyra
