#include "shyra/counter_app.hpp"

#include "shyra/builder.hpp"
#include "support/ensure.hpp"

namespace hyperrec::shyra {

namespace {

// Register map.
constexpr std::uint8_t kCount = 0;   // r0–r3
constexpr std::uint8_t kBound = 4;   // r4–r7
constexpr std::uint8_t kScratch = 8; // eq accumulator / carry
constexpr std::uint8_t kDone = 9;

}  // namespace

CounterApp::CounterApp(std::uint8_t bound) : bound_(bound) {
  HYPERREC_ENSURE(bound < 16, "bound must fit in 4 bits");
}

std::vector<ShyraConfig> CounterApp::iteration_program() {
  std::vector<ShyraConfig> program;
  program.reserve(10);

  const std::uint8_t xnor2 = tt2([](bool a, bool b) { return a == b; });
  const std::uint8_t and_xnor =
      tt3([](bool acc, bool a, bool b) { return acc && a == b; });
  const std::uint8_t or2 = tt2([](bool a, bool b) { return a || b; });
  const std::uint8_t not1 = tt1([](bool a) { return !a; });
  const std::uint8_t xor2 = tt2([](bool a, bool b) { return a != b; });
  const std::uint8_t and2 = tt2([](bool a, bool b) { return a && b; });

  // 1: eq := count0 == bound0.
  program.push_back(
      ConfigBuilder{}.lut1(xnor2, kCount, kBound, 0, kScratch).build());
  // 2–4: eq := eq AND (count_i == bound_i).
  for (std::uint8_t i = 1; i < 4; ++i) {
    program.push_back(ConfigBuilder{}
                          .lut1(and_xnor, kScratch, kCount + i, kBound + i,
                                kScratch)
                          .build());
  }
  // 5: done := done OR eq.
  program.push_back(
      ConfigBuilder{}.lut1(or2, kDone, kScratch, 0, kDone).build());
  // 6: carry := NOT eq — the increment-enable seed.
  program.push_back(
      ConfigBuilder{}.lut1(not1, kScratch, 0, 0, kScratch).build());
  // 7–9: ripple increment with carry in r8.
  for (std::uint8_t i = 0; i < 3; ++i) {
    program.push_back(ConfigBuilder{}
                          .lut1(xor2, kCount + i, kScratch, 0, kCount + i)
                          .lut2(and2, kCount + i, kScratch, 0, kScratch)
                          .build());
  }
  // 10: most significant bit; carry out is dropped.
  program.push_back(
      ConfigBuilder{}.lut1(xor2, kCount + 3, kScratch, 0, kCount + 3).build());

  HYPERREC_ASSERT(program.size() == 10);
  return program;
}

CounterApp::RunResult CounterApp::run(std::size_t max_iterations) const {
  ShyraMachine machine;
  machine.write_value(kCount, 4, 0);
  machine.write_value(kBound, 4, bound_);

  const std::vector<ShyraConfig> iteration = iteration_program();

  RunResult result;
  while (result.iterations < max_iterations) {
    for (const ShyraConfig& config : iteration) {
      machine.step(config);
      result.trace.push_back(config);
    }
    ++result.iterations;
    if (machine.reg(kDone)) break;
  }
  result.final_count = static_cast<std::uint8_t>(machine.read_value(kCount, 4));
  result.done = machine.reg(kDone);
  return result;
}

}  // namespace hyperrec::shyra
