#include "shyra/machine.hpp"

#include "support/ensure.hpp"

namespace hyperrec::shyra {

bool ShyraMachine::reg(std::size_t index) const {
  HYPERREC_ENSURE(index < kRegisters, "register index out of range");
  return regs_[index];
}

void ShyraMachine::set_reg(std::size_t index, bool value) {
  HYPERREC_ENSURE(index < kRegisters, "register index out of range");
  regs_[index] = value;
}

std::uint32_t ShyraMachine::read_value(std::size_t first,
                                       std::size_t width) const {
  HYPERREC_ENSURE(first + width <= kRegisters, "register window out of range");
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value |= static_cast<std::uint32_t>(regs_[first + i]) << i;
  }
  return value;
}

void ShyraMachine::write_value(std::size_t first, std::size_t width,
                               std::uint32_t value) {
  HYPERREC_ENSURE(first + width <= kRegisters, "register window out of range");
  for (std::size_t i = 0; i < width; ++i) {
    regs_[first + i] = (value >> i) & 1u;
  }
}

void ShyraMachine::step(const ShyraConfig& config) {
  config.validate();

  // MUX stage: all reads see the pre-cycle register state.
  std::array<bool, kMuxInputs> inputs{};
  for (std::size_t i = 0; i < kMuxInputs; ++i) {
    inputs[i] = regs_[config.mux_sel[i]];
  }

  // LUT stage.
  std::array<bool, kLuts> outputs{};
  for (std::size_t k = 0; k < kLuts; ++k) {
    const std::size_t base = kLutInputs * k;
    const std::uint8_t address =
        static_cast<std::uint8_t>(inputs[base]) |
        static_cast<std::uint8_t>(inputs[base + 1]) << 1 |
        static_cast<std::uint8_t>(inputs[base + 2]) << 2;
    outputs[k] = (config.lut_tt[k] >> address) & 1u;
  }

  // DeMUX stage.
  for (std::size_t k = 0; k < kLuts; ++k) {
    if (config.demux_sel[k] != ShyraConfig::kNoWrite) {
      regs_[config.demux_sel[k]] = outputs[k];
    }
  }
}

std::size_t ShyraMachine::run(const std::vector<ShyraConfig>& program) {
  for (const ShyraConfig& config : program) step(config);
  return program.size();
}

}  // namespace hyperrec::shyra
