#include "shyra/lfsr_app.hpp"

#include "shyra/builder.hpp"
#include "support/ensure.hpp"

namespace hyperrec::shyra {

namespace {
constexpr std::uint8_t kState = 0;    // r0–r3
constexpr std::uint8_t kScratch = 8;  // feedback bit
}  // namespace

LfsrApp::LfsrApp(std::uint8_t seed) : seed_(seed) {
  HYPERREC_ENSURE(seed != 0 && seed < 16,
                  "LFSR seed must be a non-zero 4-bit value");
}

std::uint8_t LfsrApp::next_state(std::uint8_t state) {
  const std::uint8_t feedback =
      static_cast<std::uint8_t>(((state >> 3) ^ (state >> 2)) & 1u);
  return static_cast<std::uint8_t>(((state << 1) | feedback) & 0xF);
}

std::vector<ShyraConfig> LfsrApp::step_program() {
  const std::uint8_t xor2 = tt2([](bool a, bool b) { return a != b; });
  const std::uint8_t copy1 = tt1([](bool a) { return a; });

  std::vector<ShyraConfig> program;
  program.reserve(3);
  // 1: feedback into r8; r3 := r2.
  program.push_back(ConfigBuilder{}
                        .lut1(xor2, kState + 3, kState + 2, 0, kScratch)
                        .lut2(copy1, kState + 2, 0, 0, kState + 3)
                        .build());
  // 2: r2 := r1; r1 := r0.
  program.push_back(ConfigBuilder{}
                        .lut1(copy1, kState + 1, 0, 0, kState + 2)
                        .lut2(copy1, kState + 0, 0, 0, kState + 1)
                        .build());
  // 3: r0 := feedback.
  program.push_back(
      ConfigBuilder{}.lut1(copy1, kScratch, 0, 0, kState + 0).build());
  return program;
}

LfsrApp::RunResult LfsrApp::run(std::size_t steps) const {
  ShyraMachine machine;
  // State bits r0..r3 with r3 the most significant (newest) bit.
  machine.write_value(kState, 4, seed_);

  const std::vector<ShyraConfig> step = step_program();
  RunResult result;
  for (std::size_t s = 0; s < steps; ++s) {
    for (const ShyraConfig& config : step) {
      machine.step(config);
      result.trace.push_back(config);
    }
    result.states.push_back(
        static_cast<std::uint8_t>(machine.read_value(kState, 4)));
  }
  return result;
}

}  // namespace hyperrec::shyra
