// The 4-bit bounded counter — the paper's test application (§6).
//
// "A 4 bit counter with a variable upper bound was mapped onto SHyRA.  The
//  counter increments its value that is stored in the first four registers
//  until it has reached the value stored in registers five to eight. […]
//  The design is thus time partitioned."
//
// Register map:  r0–r3 count (LSB first), r4–r7 bound, r8 scratch
// (equality accumulator, then carry chain), r9 done flag.
//
// Each loop iteration is time-partitioned into 10 cycles:
//   1     eq  := XNOR(count0, bound0)                       LUT1
//   2–4   eq  := eq AND XNOR(count_i, bound_i), i = 1..3    LUT1 (3 inputs)
//   5     done := done OR eq                                LUT1
//   6     carry := NOT eq      (increment enable)           LUT1 (1 input)
//   7–9   count_i := count_i XOR carry;                     LUT1
//         carry   := count_i AND carry,  i = 0..2           LUT2
//   10    count_3 := count_3 XOR carry                      LUT1
//
// The increment is gated by NOT eq, so the counter stops exactly at the
// bound.  With the paper's inputs (count=0000, bound=1010) the run executes
// 11 iterations — n = 110 traced reconfigurations, matching §6.
//
// The schedule exercises the whole usage spectrum: single-LUT cycles,
// dual-LUT cycles (7–9, the only ones using LUT2), a constant-free 1-input
// cycle (6) and varying MUX liveness — the phase structure visible in the
// paper's Figure 2.
#pragma once

#include <cstdint>
#include <vector>

#include "shyra/config.hpp"
#include "shyra/machine.hpp"

namespace hyperrec::shyra {

class CounterApp {
 public:
  /// `bound` is the 4-bit upper bound (0–15) loaded into r4–r7.
  explicit CounterApp(std::uint8_t bound);

  struct RunResult {
    /// Executed configuration trace, one entry per reconfiguration step.
    std::vector<ShyraConfig> trace;
    std::size_t iterations = 0;
    std::uint8_t final_count = 0;
    bool done = false;
  };

  /// The 10 configurations of one loop iteration.
  [[nodiscard]] static std::vector<ShyraConfig> iteration_program();

  /// Runs on a fresh machine until the done flag is set (or the iteration
  /// cap is hit) and returns the full reconfiguration trace.
  [[nodiscard]] RunResult run(std::size_t max_iterations = 64) const;

  [[nodiscard]] std::uint8_t bound() const noexcept { return bound_; }

 private:
  std::uint8_t bound_;
};

}  // namespace hyperrec::shyra
