#include "shyra/tracer.hpp"

namespace hyperrec::shyra {

MultiTaskTrace to_multi_task_trace(const std::vector<ShyraConfig>& trace) {
  MultiTaskTrace result;
  std::vector<TaskTrace> tasks;
  for (const std::size_t bits : kTaskBits) tasks.emplace_back(bits);
  for (const ShyraConfig& config : trace) {
    auto requirements = per_task_requirement(config);
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      tasks[j].push_back_local(std::move(requirements[j]));
    }
  }
  for (TaskTrace& task : tasks) result.add_task(std::move(task));
  return result;
}

MultiTaskTrace to_single_task_trace(const std::vector<ShyraConfig>& trace) {
  MultiTaskTrace result;
  TaskTrace task(kConfigBits);
  for (const ShyraConfig& config : trace) {
    task.push_back_local(context_requirement(config));
  }
  result.add_task(std::move(task));
  return result;
}

MachineSpec multi_task_machine() {
  return MachineSpec::local_only(
      {kTaskBits[0], kTaskBits[1], kTaskBits[2], kTaskBits[3]});
}

MachineSpec single_task_machine() {
  return MachineSpec::local_only({kConfigBits});
}

}  // namespace hyperrec::shyra
