// Construction helpers for SHyRA configurations — a tiny "assembler".
//
// Truth tables are built from C++ callables over 1, 2 or 3 inputs; unused
// inputs are replicated out so that analyze_usage() correctly reports them
// as not live (their MUX selectors then drop out of the cycle's context
// requirement).
#pragma once

#include <cstdint>

#include "shyra/config.hpp"

namespace hyperrec::shyra {

/// Truth table of a 3-input function f(a, b, c).
template <typename Fn>
[[nodiscard]] std::uint8_t tt3(Fn&& fn) {
  std::uint8_t tt = 0;
  for (std::uint8_t address = 0; address < 8; ++address) {
    const bool a = address & 1u;
    const bool b = (address >> 1) & 1u;
    const bool c = (address >> 2) & 1u;
    if (fn(a, b, c)) tt |= static_cast<std::uint8_t>(1u << address);
  }
  return tt;
}

/// Truth table of a 2-input function on inputs (0, 1); input 2 is ignored.
template <typename Fn>
[[nodiscard]] std::uint8_t tt2(Fn&& fn) {
  return tt3([&fn](bool a, bool b, bool) { return fn(a, b); });
}

/// Truth table of a 1-input function on input 0; inputs 1, 2 are ignored.
template <typename Fn>
[[nodiscard]] std::uint8_t tt1(Fn&& fn) {
  return tt3([&fn](bool a, bool, bool) { return fn(a); });
}

/// Constant truth table (no live inputs).
[[nodiscard]] std::uint8_t tt_const(bool value);

/// Fluent builder for one cycle's configuration.
class ConfigBuilder {
 public:
  /// LUT1 computes `tt` over registers (in0, in1, in2) and writes `dest`.
  ConfigBuilder& lut1(std::uint8_t tt, std::uint8_t in0, std::uint8_t in1,
                      std::uint8_t in2, std::uint8_t dest);

  /// LUT2 likewise.
  ConfigBuilder& lut2(std::uint8_t tt, std::uint8_t in0, std::uint8_t in1,
                      std::uint8_t in2, std::uint8_t dest);

  [[nodiscard]] ShyraConfig build() const;

 private:
  ShyraConfig config_;
};

}  // namespace hyperrec::shyra
