// Bridges SHyRA configuration traces into the cost-model world.
//
// The paper's experiment analyses the executed reconfiguration trace "seen
// as a sequence of n = 110 reconfiguration requirements" under the MT-Switch
// cost model, in two decompositions:
//   * multiple tasks (m = 4): T1 = LUT1 (l=8), T2 = LUT2 (l=8),
//     T3 = DeMUX (l=8), T4 = MUX (l=24), and
//   * single task (m = 1): all components combined (l = 48).
// Hyperreconfiguration costs use the typical special case v_j = l_j.
#pragma once

#include <vector>

#include "model/machine.hpp"
#include "model/trace.hpp"
#include "shyra/config.hpp"

namespace hyperrec::shyra {

/// Multi-task decomposition of a configuration trace (m = 4).
[[nodiscard]] MultiTaskTrace to_multi_task_trace(
    const std::vector<ShyraConfig>& trace);

/// Single-task decomposition (m = 1, 48-bit universe).
[[nodiscard]] MultiTaskTrace to_single_task_trace(
    const std::vector<ShyraConfig>& trace);

/// MachineSpec for the 4-task decomposition: l = {8, 8, 8, 24}, v_j = l_j.
[[nodiscard]] MachineSpec multi_task_machine();

/// MachineSpec for the single-task machine: l = 48, v = 48.
[[nodiscard]] MachineSpec single_task_machine();

}  // namespace hyperrec::shyra
