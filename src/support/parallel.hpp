// Data-parallel loop helpers on top of ThreadPool.
//
// parallel_for statically chunks [begin, end) across the pool; exceptions
// thrown by the body propagate to the caller (first one wins).  Bodies must
// not touch overlapping mutable state for distinct indices.
//
// Both helpers are reentrancy-safe: called from a worker of the target pool
// (e.g. a GA fitness loop inside a portfolio race on the same pool) they run
// serially instead of blocking the worker on nested submissions, which would
// deadlock the shared queue.
#pragma once

#include <algorithm>
#include <cstddef>
#include <future>
#include <vector>

#include "support/thread_pool.hpp"

namespace hyperrec {

/// Runs body(i) for i in [begin, end) across the pool.  Falls back to a
/// serial loop for small ranges where the fork/join overhead dominates.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  ThreadPool& pool = ThreadPool::global(),
                  std::size_t grain = 1) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t workers = pool.thread_count();
  if (total <= grain || workers <= 1 || pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, (total + grain - 1) / grain);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body]() {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& future : futures) future.get();
}

/// Maps `fn` over [begin, end) and combines the per-chunk results with
/// `combine` starting from `init`.  `fn` returns a value per index.
template <typename T, typename Fn, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, Fn&& fn,
                  Combine&& combine, ThreadPool& pool = ThreadPool::global(),
                  std::size_t grain = 1) {
  if (begin >= end) return init;
  const std::size_t total = end - begin;
  const std::size_t workers = pool.thread_count();
  if (total <= grain || workers <= 1 || pool.on_worker_thread()) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, fn(i));
    return acc;
  }
  const std::size_t chunks = std::min(workers * 4, (total + grain - 1) / grain);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<T>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, init, &fn, &combine]() {
      T acc = init;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, fn(i));
      return acc;
    }));
  }
  T acc = init;
  for (auto& future : futures) acc = combine(acc, future.get());
  return acc;
}

}  // namespace hyperrec
