// A fixed-size work-stealing-free thread pool with a shared queue.
//
// HPC components of the library (genetic-algorithm fitness evaluation,
// benchmark parameter sweeps, workload batch generation) submit batches of
// independent jobs.  The pool is deliberately simple — a mutex-protected
// queue is more than adequate for the coarse-grained tasks here and keeps
// the implementation auditable.
//
// parallel_for / parallel_reduce (see parallel.hpp) are the intended entry
// points; direct submit() is available for irregular work.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "support/ensure.hpp"
#include "support/thread_annotations.hpp"

namespace hyperrec {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// True when the calling thread is one of this pool's workers.  Blocking
  /// a worker on work queued behind it deadlocks the shared queue (no work
  /// stealing), so fork/join helpers use this to degrade to serial
  /// execution instead of submitting nested work.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Enqueues a nullary callable; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> result = task->get_future();
    {
      const MutexLock lock(mutex_);
      HYPERREC_ENSURE(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide pool, sized to the hardware, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_{"ThreadPool::mutex"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace hyperrec
