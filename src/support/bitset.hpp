// DynamicBitset: a run-time sized bitset with set-algebra operations.
//
// This is the core data structure of the library: context requirements and
// hypercontexts in the switch cost model (Lange/Middendorf 2004, §2 and §4)
// are subsets of a fixed universe of reconfigurable units ("switches"), and
// every solver manipulates unions, intersections, differences and popcounts
// of such subsets.  std::bitset has a compile-time size and std::vector<bool>
// has no word-level algebra, hence this class.
//
// All binary operations require both operands to have the same size() and
// throw PreconditionError otherwise.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "support/ensure.hpp"

namespace hyperrec {

class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  /// Empty set over an empty universe.
  DynamicBitset() = default;

  /// Empty set over a universe of `size` elements (all bits clear).
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_(word_count(size), 0) {}

  /// Universe size (number of addressable bits).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  [[nodiscard]] bool test(std::size_t pos) const {
    HYPERREC_ENSURE(pos < size_, "bit index out of range");
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
  }

  DynamicBitset& set(std::size_t pos) {
    HYPERREC_ENSURE(pos < size_, "bit index out of range");
    words_[pos / kWordBits] |= Word{1} << (pos % kWordBits);
    return *this;
  }

  DynamicBitset& reset(std::size_t pos) {
    HYPERREC_ENSURE(pos < size_, "bit index out of range");
    words_[pos / kWordBits] &= ~(Word{1} << (pos % kWordBits));
    return *this;
  }

  /// Sets bits [first, last) — convenient for contiguous per-task switch
  /// ranges such as SHyRA's bit layout.
  DynamicBitset& set_range(std::size_t first, std::size_t last);

  /// Clears all bits.
  DynamicBitset& reset_all() noexcept;

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);
  /// Set difference: removes every bit that is set in `other`.
  DynamicBitset& operator-=(const DynamicBitset& other);

  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a,
                                               const DynamicBitset& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a,
                                               const DynamicBitset& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator^(DynamicBitset a,
                                               const DynamicBitset& b) {
    a ^= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator-(DynamicBitset a,
                                               const DynamicBitset& b) {
    a -= b;
    return a;
  }

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// True iff this ⊆ other (every set bit of *this is set in other).
  [[nodiscard]] bool subset_of(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  /// |this ∪ other| without materialising the union.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const;

  /// |this Δ other| (symmetric difference), the changeover cost of §4.1.
  [[nodiscard]] std::size_t symmetric_difference_count(
      const DynamicBitset& other) const;

  /// In-place union that also returns the number of bits newly added —
  /// lets interval DPs maintain running union popcounts in O(words).
  std::size_t merge_counting(const DynamicBitset& other);

  /// Calls `fn(pos)` for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
        fn(w * kWordBits + bit);
        word &= word - 1;
      }
    }
  }

  /// Index of the lowest set bit, or size() if empty.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// "011010…"-style string, index 0 leftmost.  Useful in test diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// Parses a string of '0'/'1' characters (index 0 leftmost).
  [[nodiscard]] static DynamicBitset from_string(const std::string& bits);

  /// Builds a set over `size` elements from the word-wise OR of two raw
  /// rows of `words` words each (the materialisation path of
  /// TaskTraceStats).  The rows' tail bits past `size` must be zero, and
  /// `words` must match the universe's word count.
  [[nodiscard]] static DynamicBitset from_or_words(std::size_t size,
                                                   const Word* a,
                                                   const Word* b,
                                                   std::size_t words);

  /// FNV-1a over the words — for unordered_map memoisation keys.
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Raw word access (read-only) for bulk algorithms.
  [[nodiscard]] const std::vector<Word>& words() const noexcept {
    return words_;
  }

 private:
  static std::size_t word_count(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }
  void check_same_size(const DynamicBitset& other) const {
    HYPERREC_ENSURE(size_ == other.size_,
                    "bitset operands have different universe sizes");
  }
  // Bits past size_ in the last word are kept at zero by all mutators.
  void clear_tail() noexcept;

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const noexcept {
    return b.hash();
  }
};

}  // namespace hyperrec
