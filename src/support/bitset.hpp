// DynamicBitset: a run-time sized bitset with set-algebra operations.
//
// This is the core data structure of the library: context requirements and
// hypercontexts in the switch cost model (Lange/Middendorf 2004, §2 and §4)
// are subsets of a fixed universe of reconfigurable units ("switches"), and
// every solver manipulates unions, intersections, differences and popcounts
// of such subsets.  std::bitset has a compile-time size and std::vector<bool>
// has no word-level algebra, hence this class.
//
// Storage: small-buffer optimised.  A universe of <= 64 bits lives in a
// single inline word — no heap allocation at all, which is where most
// workload families (universe 6..64) live, so interval-union
// materialisation, schedule decoding and changeover evaluation stay
// allocation-free on those instances.  Larger universes use one heap
// array.  `words()` exposes the storage as a {pointer, length} span either
// way.
//
// All word loops route through support/bitset_kernels.hpp — the runtime-
// dispatched scalar/AVX2/AVX-512 kernel layer — with an inlined scalar fast
// path for the 1–2 word cases.
//
// All binary operations require both operands to have the same size() and
// throw PreconditionError otherwise.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "support/bitset_kernels.hpp"
#include "support/ensure.hpp"

namespace hyperrec {

class DynamicBitset {
 public:
  using Word = kernels::Word;
  static constexpr std::size_t kWordBits = 64;

  /// Empty set over an empty universe.
  DynamicBitset() = default;

  /// Empty set over a universe of `size` elements (all bits clear).
  explicit DynamicBitset(std::size_t size)
      : size_(size), nwords_(word_count(size)) {
    if (nwords_ > 1) heap_ = std::make_unique<Word[]>(nwords_);  // zeroed
  }

  DynamicBitset(const DynamicBitset& other)
      : size_(other.size_),
        nwords_(other.nwords_),
        inline_word_(other.inline_word_) {
    if (other.heap_) {
      heap_ = std::make_unique_for_overwrite<Word[]>(nwords_);
      std::copy(other.heap_.get(), other.heap_.get() + nwords_, heap_.get());
    }
  }

  DynamicBitset(DynamicBitset&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        nwords_(std::exchange(other.nwords_, 0)),
        inline_word_(std::exchange(other.inline_word_, 0)),
        heap_(std::move(other.heap_)) {}

  DynamicBitset& operator=(const DynamicBitset& other) {
    if (this == &other) return *this;
    if (other.heap_) {
      // Reuse the existing allocation when the word counts already match.
      if (nwords_ != other.nwords_ || !heap_) {
        heap_ = std::make_unique_for_overwrite<Word[]>(other.nwords_);
      }
      std::copy(other.heap_.get(), other.heap_.get() + other.nwords_,
                heap_.get());
    } else {
      heap_.reset();
      inline_word_ = other.inline_word_;
    }
    size_ = other.size_;
    nwords_ = other.nwords_;
    return *this;
  }

  DynamicBitset& operator=(DynamicBitset&& other) noexcept {
    if (this == &other) return *this;
    size_ = std::exchange(other.size_, 0);
    nwords_ = std::exchange(other.nwords_, 0);
    inline_word_ = std::exchange(other.inline_word_, 0);
    heap_ = std::move(other.heap_);
    return *this;
  }

  ~DynamicBitset() = default;

  /// Universe size (number of addressable bits).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when the set lives entirely in the inline word (universe <= 64):
  /// construction, copies and set algebra perform no heap allocation.
  [[nodiscard]] bool uses_inline_storage() const noexcept {
    return heap_ == nullptr;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    return kernels::popcount(data(), nwords_);
  }

  [[nodiscard]] bool test(std::size_t pos) const {
    HYPERREC_ENSURE(pos < size_, "bit index out of range");
    return (data()[pos / kWordBits] >> (pos % kWordBits)) & 1u;
  }

  DynamicBitset& set(std::size_t pos) {
    HYPERREC_ENSURE(pos < size_, "bit index out of range");
    data()[pos / kWordBits] |= Word{1} << (pos % kWordBits);
    return *this;
  }

  DynamicBitset& reset(std::size_t pos) {
    HYPERREC_ENSURE(pos < size_, "bit index out of range");
    data()[pos / kWordBits] &= ~(Word{1} << (pos % kWordBits));
    return *this;
  }

  /// Sets bits [first, last) — convenient for contiguous per-task switch
  /// ranges such as SHyRA's bit layout.
  DynamicBitset& set_range(std::size_t first, std::size_t last);

  /// Clears all bits.
  DynamicBitset& reset_all() noexcept;

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  DynamicBitset& operator|=(const DynamicBitset& other) {
    check_same_size(other);
    kernels::or_words(data(), data(), other.data(), nwords_);
    return *this;
  }
  DynamicBitset& operator&=(const DynamicBitset& other) {
    check_same_size(other);
    kernels::and_words(data(), data(), other.data(), nwords_);
    return *this;
  }
  DynamicBitset& operator^=(const DynamicBitset& other) {
    check_same_size(other);
    kernels::xor_words(data(), data(), other.data(), nwords_);
    return *this;
  }
  /// Set difference: removes every bit that is set in `other`.
  DynamicBitset& operator-=(const DynamicBitset& other) {
    check_same_size(other);
    kernels::andnot_words(data(), data(), other.data(), nwords_);
    return *this;
  }

  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a,
                                               const DynamicBitset& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a,
                                               const DynamicBitset& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator^(DynamicBitset a,
                                               const DynamicBitset& b) {
    a ^= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator-(DynamicBitset a,
                                               const DynamicBitset& b) {
    a -= b;
    return a;
  }

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept {
    if (size_ != other.size_) return false;
    const Word* mine = data();
    const Word* theirs = other.data();
    for (std::size_t i = 0; i < nwords_; ++i) {
      if (mine[i] != theirs[i]) return false;
    }
    return true;
  }

  /// True iff this ⊆ other (every set bit of *this is set in other).
  [[nodiscard]] bool subset_of(const DynamicBitset& other) const {
    check_same_size(other);
    return kernels::subset(data(), other.data(), nwords_);
  }

  /// True iff the two sets share at least one element.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const {
    check_same_size(other);
    return kernels::intersects(data(), other.data(), nwords_);
  }

  /// |this ∪ other| without materialising the union.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const {
    check_same_size(other);
    return kernels::or_popcount(data(), other.data(), nwords_);
  }

  /// |this Δ other| (symmetric difference), the changeover cost of §4.1.
  [[nodiscard]] std::size_t symmetric_difference_count(
      const DynamicBitset& other) const {
    check_same_size(other);
    return kernels::xor_popcount(data(), other.data(), nwords_);
  }

  /// In-place union that also returns the number of bits newly added —
  /// lets interval DPs maintain running union popcounts in O(words).
  std::size_t merge_counting(const DynamicBitset& other) {
    check_same_size(other);
    return kernels::or_merge_count(data(), other.data(), nwords_);
  }

  /// Calls `fn(pos)` for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    const Word* words = data();
    for (std::size_t w = 0; w < nwords_; ++w) {
      Word word = words[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn(w * kWordBits + bit);
        word &= word - 1;
      }
    }
  }

  /// Index of the lowest set bit, or size() if empty.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// "011010…"-style string, index 0 leftmost.  Useful in test diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// Parses a string of '0'/'1' characters (index 0 leftmost).
  [[nodiscard]] static DynamicBitset from_string(const std::string& bits);

  /// Builds a set over `size` elements from the word-wise OR of two raw
  /// rows of `words` words each (the materialisation path of
  /// TaskTraceStats).  The rows' tail bits past `size` must be zero, and
  /// `words` must match the universe's word count.
  [[nodiscard]] static DynamicBitset from_or_words(std::size_t size,
                                                   const Word* a,
                                                   const Word* b,
                                                   std::size_t words);

  /// FNV-1a over the words — for unordered_map memoisation keys.
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Raw word access (read-only) for bulk algorithms.  The span stays valid
  /// and stable while the bitset is alive and unmoved (inline or heap).
  [[nodiscard]] std::span<const Word> words() const noexcept {
    return {data(), nwords_};
  }

 private:
  static std::size_t word_count(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }
  [[nodiscard]] Word* data() noexcept {
    return heap_ ? heap_.get() : &inline_word_;
  }
  [[nodiscard]] const Word* data() const noexcept {
    return heap_ ? heap_.get() : &inline_word_;
  }
  void check_same_size(const DynamicBitset& other) const {
    HYPERREC_ENSURE(size_ == other.size_,
                    "bitset operands have different universe sizes");
  }
  // Bits past size_ in the last word are kept at zero by all mutators.
  void clear_tail() noexcept;

  std::size_t size_ = 0;
  std::size_t nwords_ = 0;
  /// The single storage word for universes <= 64 (heap_ == nullptr).
  Word inline_word_ = 0;
  /// Heap storage for universes > 64; null otherwise.
  std::unique_ptr<Word[]> heap_;
};

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const noexcept {
    return b.hash();
  }
};

}  // namespace hyperrec
