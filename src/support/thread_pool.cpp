#include "support/thread_pool.hpp"

namespace hyperrec {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

namespace {

/// Pool whose worker_loop is running on this thread, if any.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return current_pool == this;
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hyperrec
