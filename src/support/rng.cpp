#include "support/rng.hpp"

namespace hyperrec {

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) {
  HYPERREC_ENSURE(bound > 0, "uniform() bound must be positive");
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  HYPERREC_ENSURE(lo <= hi, "uniform_int() requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

Xoshiro256 Xoshiro256::split(std::uint64_t index) noexcept {
  SplitMix64 mix((*this)() ^ (0x9e3779b97f4a7c15ull * (index + 1)));
  Xoshiro256 child(mix.next());
  return child;
}

}  // namespace hyperrec
