// Error-handling primitives for the hyperrec library.
//
// HYPERREC_ENSURE is used to validate preconditions on public API entry
// points; violations throw hyperrec::PreconditionError carrying the failed
// expression, file and line.  Internal invariants use HYPERREC_ASSERT which
// compiles to the same check in all build types (the library is not
// performance-critical enough to strip invariant checks, and exact solvers
// rely on them during development).
#pragma once

#include <stdexcept>
#include <string>

namespace hyperrec {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant fails (library bug, not caller error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " +
                       file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace hyperrec

#define HYPERREC_ENSURE(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hyperrec::detail::throw_precondition(#expr, __FILE__, __LINE__,    \
                                             (msg));                       \
    }                                                                      \
  } while (false)

#define HYPERREC_ASSERT(expr)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hyperrec::detail::throw_invariant(#expr, __FILE__, __LINE__);      \
    }                                                                      \
  } while (false)
