// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (genetic algorithm, simulated
// annealing, synthetic workload generators) takes an explicit seed and uses
// these generators, so that experiments — including the paper-reproduction
// benches — are bit-for-bit reproducible across runs and machines.
//
// Xoshiro256** is used as the workhorse generator (fast, 256-bit state,
// passes BigCrush); SplitMix64 seeds it and derives independent streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/ensure.hpp"

namespace hyperrec {

/// SplitMix64: tiny generator used to expand a 64-bit seed into streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna; satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool flip(double p) { return uniform01() < p; }

  /// Derives an independent generator (stream `index` from this state).
  [[nodiscard]] Xoshiro256 split(std::uint64_t index) noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle with the library generator.
template <typename T>
void shuffle(std::vector<T>& items, Xoshiro256& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace hyperrec
