// Saturating arithmetic for Cost values.
//
// The interval DPs use kCostInfinity = max/4 as their "unreachable"
// sentinel, chosen so that a couple of careless additions of sentinels
// cannot wrap.  That headroom is not enough against adversarial inputs: a
// caller-supplied hyper_init or private_demand near the Cost maximum makes
// `best[start] + hyper_init + per_step * (end - start)` overflow, which is
// undefined behaviour for the signed Cost and in practice wraps negative —
// the DP then "prefers" the corrupted candidate and reconstructs a garbage
// partition.  cost_add/cost_mul detect overflow exactly and clamp the
// result into [-kCostInfinity, kCostInfinity]: ordering among unsaturated
// values is preserved, saturated values compare equal to the sentinel
// ("unrepresentably expensive"), and no operation can wrap.
#pragma once

#include <limits>

#include "model/types.hpp"

namespace hyperrec {

/// Shared "unreachable" sentinel of the interval DPs.  Costs at or above it
/// are treated as infinite; cost_add/cost_mul never produce values beyond it.
constexpr Cost kCostInfinity = std::numeric_limits<Cost>::max() / 4;

namespace detail {

constexpr Cost clamp_cost(Cost value) noexcept {
  if (value > kCostInfinity) return kCostInfinity;
  if (value < -kCostInfinity) return -kCostInfinity;
  return value;
}

}  // namespace detail

/// a + b, saturating at ±kCostInfinity.
[[nodiscard]] constexpr Cost cost_add(Cost a, Cost b) noexcept {
  Cost out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    // Signed addition only overflows when both operands share a sign.
    return a > 0 ? kCostInfinity : -kCostInfinity;
  }
  return detail::clamp_cost(out);
}

/// a · b, saturating at ±kCostInfinity.
[[nodiscard]] constexpr Cost cost_mul(Cost a, Cost b) noexcept {
  Cost out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return (a > 0) == (b > 0) ? kCostInfinity : -kCostInfinity;
  }
  return detail::clamp_cost(out);
}

}  // namespace hyperrec
