// ASCII table and CSV emission for the benchmark harness.
//
// Every bench binary reproduces a figure or table from the paper and prints
// it as an aligned ASCII table (paper value vs measured value), optionally
// also as CSV for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hyperrec {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before add_row.
  Table& headers(std::vector<std::string> names);

  /// Appends a row; the cell count must match the header count.
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with to_string-like rules.
  template <typename... Ts>
  Table& row(const Ts&... cells) {
    return add_row({format_cell(cells)...});
  }

  /// Renders with box-drawing alignment.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting of commas needed for our data).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  [[nodiscard]] static std::string format_cell(const std::string& s) {
    return s;
  }
  [[nodiscard]] static std::string format_cell(const char* s) { return s; }
  [[nodiscard]] static std::string format_cell(double v);
  [[nodiscard]] static std::string format_cell(std::int64_t v);
  [[nodiscard]] static std::string format_cell(std::uint64_t v);
  [[nodiscard]] static std::string format_cell(int v) {
    return format_cell(static_cast<std::int64_t>(v));
  }
  [[nodiscard]] static std::string format_cell(unsigned v) {
    return format_cell(static_cast<std::uint64_t>(v));
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Percentage "x of base" rendered as e.g. "53.3%"; matches the paper's
/// reporting style for reconfiguration-cost ratios.
[[nodiscard]] std::string percent_of(std::int64_t x, std::int64_t base);

}  // namespace hyperrec
