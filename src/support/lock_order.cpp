#include "support/lock_order.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/ensure.hpp"

namespace hyperrec::lock_order {

namespace detail {

std::atomic<bool> g_enabled{
#if defined(HYPERREC_LOCK_ORDER) && HYPERREC_LOCK_ORDER
    true
#else
    false
#endif
};

}  // namespace detail

namespace {

/// Locks one thread can plausibly hold at once; the deepest real nesting in
/// the library is 3 (service streams → mux streams → shard).
constexpr std::size_t kMaxHeld = 64;

/// Per-thread held-lock stack.  Deliberately trivially destructible (plain
/// arrays, no heap): unlocks can still happen during static destruction
/// (ThreadPool::global()'s teardown) after non-trivial thread_locals died.
struct HeldSet {
  const void* mutex[kMaxHeld];
  const char* name[kMaxHeld];
  std::size_t count;
};

thread_local HeldSet t_held{};

/// The global acquired-before graph: one node per lock class (name), one
/// edge per observed held→acquired pair.  Guarded by its own raw mutex —
/// the validator's bookkeeping lock must not itself be order-tracked.
struct Graph {
  std::mutex mutex;
  std::unordered_map<std::string, std::unordered_set<std::string>> edges;

  bool has_edge(const std::string& from, const std::string& to) const {
    const auto it = edges.find(from);
    return it != edges.end() && it->second.count(to) > 0;
  }

  /// Shortest already-established chain from → ... → to, empty when `to`
  /// is unreachable.  Used both as the cycle test and for the message.
  std::vector<std::string> chain(const std::string& from,
                                 const std::string& to) const {
    if (from == to) return {from, to};
    std::unordered_map<std::string, std::string> parent;
    std::deque<std::string> frontier{from};
    parent.emplace(from, std::string());
    while (!frontier.empty()) {
      const std::string node = std::move(frontier.front());
      frontier.pop_front();
      const auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const std::string& next : it->second) {
        if (parent.count(next) > 0) continue;
        parent.emplace(next, node);
        if (next == to) {
          std::vector<std::string> path{to};
          for (std::string hop = node; !hop.empty(); hop = parent[hop]) {
            path.push_back(hop);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        frontier.push_back(next);
      }
    }
    return {};
  }
};

/// Immortal singleton (intentionally leaked — see the naked-new allowlist
/// in tools/lint.py): a Meyers static would be constructed lazily on the
/// first lock and therefore destroyed BEFORE longer-lived statics such as
/// ThreadPool::global(), whose teardown still locks.
Graph& graph() {
  static Graph* g = new Graph;
  return *g;
}

std::string quote(const char* name) {
  std::string out = "\"";
  out += (name != nullptr ? name : "?");
  out += '"';
  return out;
}

std::string format_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& hop : chain) {
    if (!out.empty()) out += " -> ";
    out += "\"" + hop + "\"";
  }
  return out;
}

}  // namespace

bool set_enabled(bool enabled) noexcept {
  return detail::g_enabled.exchange(enabled, std::memory_order_relaxed);
}

namespace {

void push_held(const void* mutex, const char* name) {
  HeldSet& held = t_held;
  HYPERREC_ENSURE(held.count < kMaxHeld,
                  "lock-order validator: more than 64 locks held by one "
                  "thread — raise kMaxHeld if this is intentional");
  held.mutex[held.count] = mutex;
  held.name[held.count] = name;
  held.count += 1;
}

void check_not_held(const void* mutex, const char* name) {
  const HeldSet& held = t_held;
  for (std::size_t i = 0; i < held.count; ++i) {
    HYPERREC_ENSURE(held.mutex[i] != mutex,
                    "recursive acquisition: mutex " + quote(name) +
                        " is already held by this thread (self-deadlock "
                        "with a non-recursive mutex)");
  }
}

}  // namespace

void on_acquire(const void* mutex, const char* name) {
  if (!enabled()) return;
  check_not_held(mutex, name);
  const HeldSet& held = t_held;
  if (held.count > 0) {
    Graph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mutex);
    const std::string acquired(name != nullptr ? name : "?");
    for (std::size_t i = 0; i < held.count; ++i) {
      const std::string holder(held.name[i] != nullptr ? held.name[i] : "?");
      // Same lock class: sharded/hierarchical same-name nesting is allowed
      // by construction; ordering is only tracked BETWEEN classes.
      if (holder == acquired) continue;
      if (g.has_edge(holder, acquired)) continue;
      // Adding holder→acquired: would it close a cycle?  If acquired
      // already reaches holder, the opposite order was established earlier
      // — fail NOW, before the underlying lock() can block, naming both
      // locks and the established acquisition order.
      const std::vector<std::string> established = g.chain(acquired, holder);
      HYPERREC_ENSURE(
          established.empty(),
          "lock-order inversion: acquiring " + quote(name) +
              " while holding \"" + holder +
              "\", but the opposite acquisition order was established "
              "earlier (acquired-before chain: " +
              format_chain(established) + ")");
      g.edges[holder].insert(acquired);
    }
  }
  push_held(mutex, name);
}

void on_acquire_try(const void* mutex, const char* name) {
  if (!enabled()) return;
  // A successful try_lock is still a hold (release must balance, and later
  // blocking acquisitions order against it) but contributes no edges of its
  // own: try_lock never blocks, so it cannot participate in a deadlock as
  // the waiting side.
  check_not_held(mutex, name);
  push_held(mutex, name);
}

void on_release(const void* mutex) noexcept {
  HeldSet& held = t_held;
  // Search from the back: releases are almost always LIFO, and out-of-order
  // release is legal for std::mutex so it must be legal here too.
  for (std::size_t i = held.count; i-- > 0;) {
    if (held.mutex[i] != mutex) continue;
    for (std::size_t j = i + 1; j < held.count; ++j) {
      held.mutex[j - 1] = held.mutex[j];
      held.name[j - 1] = held.name[j];
    }
    held.count -= 1;
    return;
  }
  // Not tracked: validation was off when this mutex was acquired.
}

std::size_t edge_count() {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mutex);
  std::size_t total = 0;
  for (const auto& [node, out] : g.edges) total += out.size();
  return total;
}

std::size_t held_count() noexcept { return t_held.count; }

void reset() {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mutex);
  g.edges.clear();
}

}  // namespace hyperrec::lock_order
