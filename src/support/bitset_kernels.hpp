// Runtime-dispatched word-array kernels — the one home for every word loop.
//
// All set algebra in this codebase (hypercontext unions, changeover deltas,
// sparse-table row builds, streaming appends) bottoms out in loops over
// arrays of 64-bit words.  This header centralises those loops behind a
// function-pointer table selected ONCE per process from the CPU's feature
// bits: a portable scalar flavour, an AVX2 flavour, and an AVX-512 flavour
// (F+BW+VPOPCNTDQ).  Consumers call the free inline wrappers below, never a
// table directly, so every call site gets two things for free:
//
//   * a small-universe fast path: for n <= kInlineWords the wrapper runs a
//     fully inlined scalar loop (most workload families live at universe
//     <= 64, i.e. n == 1, where an indirect call would cost more than the
//     op itself);
//   * one dispatch decision for larger arrays, made at first use via cpuid
//     and overridable with the HYPERREC_FORCE_SCALAR environment variable
//     (any non-empty value other than "0") for differential testing.
//
// All flavours are bit-identical by contract — tests/support/
// test_bitset_kernels.cpp proves it per kernel across tail-word seams —
// so forcing scalar can never change solver output, only speed.
//
// Aliasing: the combining kernels tolerate dst == a and/or dst == b
// (every flavour loads both inputs before storing); distinct-but-
// overlapping ranges are not supported.
//
// tools/lint.py (rule `word-kernel`) bans raw __builtin_popcount*/
// std::popcount outside this layer so hot-loop word algebra cannot quietly
// fork from the dispatched kernels again.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hyperrec::kernels {

using Word = std::uint64_t;

/// One ISA flavour's kernels.  `n` is always a count of 64-bit words; all
/// pointers must be valid for `n` words (no alignment requirement).
struct KernelTable {
  const char* name;  ///< "scalar", "avx2", "avx512"

  /// dst[i] = a[i] | b[i]
  void (*or_words)(Word* dst, const Word* a, const Word* b, std::size_t n);
  /// dst[i] = a[i] & b[i]
  void (*and_words)(Word* dst, const Word* a, const Word* b, std::size_t n);
  /// dst[i] = a[i] & ~b[i]
  void (*andnot_words)(Word* dst, const Word* a, const Word* b, std::size_t n);
  /// dst[i] = a[i] ^ b[i]
  void (*xor_words)(Word* dst, const Word* a, const Word* b, std::size_t n);

  /// Σ popcount(a[i])
  std::size_t (*popcount)(const Word* a, std::size_t n);
  /// Σ popcount(a[i] | b[i]) — |A ∪ B| without materialising the union.
  std::size_t (*or_popcount)(const Word* a, const Word* b, std::size_t n);
  /// Σ popcount(a[i] | b[i] | c[i]) — the fused greedy window score.
  std::size_t (*or3_popcount)(const Word* a, const Word* b, const Word* c,
                              std::size_t n);
  /// Σ popcount(a[i] ^ b[i]) — |A Δ B|, the §4.1 changeover cost.
  std::size_t (*xor_popcount)(const Word* a, const Word* b, std::size_t n);
  /// Σ popcount(a[i] & ~b[i]) — |A \ B|.
  std::size_t (*andnot_popcount)(const Word* a, const Word* b, std::size_t n);

  /// (a[i] & ~b[i]) == 0 for all i — A ⊆ B.
  bool (*subset)(const Word* a, const Word* b, std::size_t n);
  /// (a[i] & b[i]) != 0 for some i.
  bool (*intersects)(const Word* a, const Word* b, std::size_t n);

  /// dst[i] |= src[i]; returns Σ popcount(src[i] & ~old dst[i]) — the
  /// "newly added bits" count interval DPs maintain incrementally.
  std::size_t (*or_merge_count)(Word* dst, const Word* src, std::size_t n);
};

/// The portable scalar flavour — always available, the differential oracle.
[[nodiscard]] const KernelTable& scalar_table() noexcept;

/// Best SIMD flavour compiled in AND supported by this CPU, or nullptr when
/// the build/host has none.  Ignores HYPERREC_FORCE_SCALAR — differential
/// tests use this to pit scalar against SIMD inside one process.
[[nodiscard]] const KernelTable* simd_table() noexcept;

/// The dispatched flavour: scalar when HYPERREC_FORCE_SCALAR is set (to a
/// non-empty value other than "0") at first use, else the best SIMD
/// flavour, else scalar.  Selected once; stable for the process lifetime.
[[nodiscard]] const KernelTable& active_table() noexcept;

/// Name of the dispatched flavour ("scalar"/"avx2"/"avx512") for /statz,
/// bench labels and logs.
[[nodiscard]] const char* active_isa() noexcept;

/// True when the HYPERREC_FORCE_SCALAR override pinned dispatch to scalar.
[[nodiscard]] bool force_scalar_requested() noexcept;

// --- inline wrappers: the only calling convention consumers use -----------

/// Word counts at or below this run the inlined scalar path (bit-identical
/// to scalar_table()); larger arrays take one indirect call into the
/// dispatched table.  2 words = universe 128, past which SIMD starts to pay
/// for the call.
inline constexpr std::size_t kInlineWords = 2;

/// Single-word popcount — the kernel layer's spelling for one-off word
/// counts (SHyRA config deltas, decoders) so the lint rule has no
/// exceptions list.
[[nodiscard]] inline std::size_t popcount_word(Word w) noexcept {
  return static_cast<std::size_t>(std::popcount(w));
}

inline void or_words(Word* dst, const Word* a, const Word* b, std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
    return;
  }
  active_table().or_words(dst, a, b, n);
}

inline void and_words(Word* dst, const Word* a, const Word* b, std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
    return;
  }
  active_table().and_words(dst, a, b, n);
}

inline void andnot_words(Word* dst, const Word* a, const Word* b,
                         std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
    return;
  }
  active_table().andnot_words(dst, a, b, n);
}

inline void xor_words(Word* dst, const Word* a, const Word* b, std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
    return;
  }
  active_table().xor_words(dst, a, b, n);
}

[[nodiscard]] inline std::size_t popcount(const Word* a, std::size_t n) {
  if (n <= kInlineWords) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i]);
    return total;
  }
  return active_table().popcount(a, n);
}

[[nodiscard]] inline std::size_t or_popcount(const Word* a, const Word* b,
                                             std::size_t n) {
  if (n <= kInlineWords) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i] | b[i]);
    return total;
  }
  return active_table().or_popcount(a, b, n);
}

[[nodiscard]] inline std::size_t or3_popcount(const Word* a, const Word* b,
                                              const Word* c, std::size_t n) {
  if (n <= kInlineWords) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += popcount_word(a[i] | b[i] | c[i]);
    }
    return total;
  }
  return active_table().or3_popcount(a, b, c, n);
}

[[nodiscard]] inline std::size_t xor_popcount(const Word* a, const Word* b,
                                              std::size_t n) {
  if (n <= kInlineWords) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i] ^ b[i]);
    return total;
  }
  return active_table().xor_popcount(a, b, n);
}

[[nodiscard]] inline std::size_t andnot_popcount(const Word* a, const Word* b,
                                                 std::size_t n) {
  if (n <= kInlineWords) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i] & ~b[i]);
    return total;
  }
  return active_table().andnot_popcount(a, b, n);
}

[[nodiscard]] inline bool subset(const Word* a, const Word* b, std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((a[i] & ~b[i]) != 0) return false;
    }
    return true;
  }
  return active_table().subset(a, b, n);
}

[[nodiscard]] inline bool intersects(const Word* a, const Word* b,
                                     std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((a[i] & b[i]) != 0) return true;
    }
    return false;
  }
  return active_table().intersects(a, b, n);
}

inline std::size_t or_merge_count(Word* dst, const Word* src, std::size_t n) {
  if (n <= kInlineWords) {
    std::size_t added = 0;
    for (std::size_t i = 0; i < n; ++i) {
      added += popcount_word(src[i] & ~dst[i]);
      dst[i] |= src[i];
    }
    return added;
  }
  return active_table().or_merge_count(dst, src, n);
}

}  // namespace hyperrec::kernels
