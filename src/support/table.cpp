#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/ensure.hpp"

namespace hyperrec {

Table& Table::headers(std::vector<std::string> names) {
  HYPERREC_ENSURE(rows_.empty(), "headers() must precede add_row()");
  headers_ = std::move(names);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  HYPERREC_ENSURE(headers_.empty() || cells.size() == headers_.size(),
                  "row width differs from header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::format_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string Table::format_cell(std::int64_t v) { return std::to_string(v); }
std::string Table::format_cell(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_rule = [&os, &widths]() {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  if (!headers_.empty()) {
    print_row(headers_);
    print_rule();
  }
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!headers_.empty()) print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string percent_of(std::int64_t x, std::int64_t base) {
  HYPERREC_ENSURE(base != 0, "percent_of() with zero base");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                100.0 * static_cast<double>(x) / static_cast<double>(base));
  return buf;
}

}  // namespace hyperrec
