// Lockdep-lite: a runtime lock-order validator for hyperrec::Mutex.
//
// TSan catches a lock-order inversion only when a test run actually
// interleaves the two acquisition paths; this validator catches it on the
// FIRST time the second order is ever attempted, on any thread, before the
// underlying mutex call can block — so a would-be deadlock surfaces as a
// deterministic ENSURE failure naming both locks instead of a hung test.
//
// Model (the same one the kernel's lockdep uses, minus stack traces):
//
//   * every hyperrec::Mutex carries a NAME — its lock class.  Sharded
//     same-class locks (e.g. the solve cache's shard stripes) share one
//     name; ordering is tracked between classes, never within one, so
//     hierarchical same-class nesting is allowed by construction.
//   * a thread-local stack records the locks each thread currently holds.
//   * a global acquired-before graph accumulates one edge per observed
//     (held-class → acquired-class) pair.  Before adding an edge A→B the
//     validator checks whether B already reaches A; if so, the two orders
//     form a cycle and the acquisition ENSURE-fails with both lock names
//     and the previously established chain.
//   * re-acquiring the SAME mutex object on one thread is a guaranteed
//     self-deadlock with std::mutex and fails immediately.
//
// The checks run only while enabled: builds configured with
// -DHYPERREC_LOCK_ORDER=ON (the Debug and sanitizer CI jobs) enable them
// process-wide so the whole test suite doubles as a lock-order fuzzer;
// tests can also opt in locally with ScopedEnable regardless of build
// flags.  Disabled cost is one relaxed atomic load per lock operation.
//
// This file and thread_annotations.hpp are the two deliberate holders of
// raw std::mutex in the library (see tools/lint.py rule `raw-mutex`): the
// validator's own bookkeeping lock must not be order-tracked.
#pragma once

#include <atomic>
#include <cstddef>

namespace hyperrec::lock_order {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when acquisitions are being validated.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns validation on or off process-wide; returns the previous state.
bool set_enabled(bool enabled) noexcept;

/// Records intent to acquire `mutex` (class `name`) on this thread and
/// validates ordering against every lock the thread already holds.  Called
/// BEFORE the underlying lock so an inversion fails instead of deadlocking.
/// Throws PreconditionError (via HYPERREC_ENSURE) on a same-object
/// re-acquisition or an acquired-before cycle.
void on_acquire(const void* mutex, const char* name);

/// Records a successful try_lock.  A try_lock can never block, so it
/// contributes no ordering edges; the hold is tracked so release balances.
void on_acquire_try(const void* mutex, const char* name);

/// Removes `mutex` from this thread's held set (no-op when validation was
/// off at acquisition time — the sets stay balanced either way).
void on_release(const void* mutex) noexcept;

/// Number of distinct acquired-before edges observed so far.
[[nodiscard]] std::size_t edge_count();

/// Number of locks the calling thread currently holds (tracked ones).
[[nodiscard]] std::size_t held_count() noexcept;

/// Clears the global acquired-before graph.  Per-thread held sets are left
/// alone (they are empty whenever no lock is held).  Test-only.
void reset();

/// RAII test helper: enables validation and clears the graph on entry,
/// restores the previous enablement (and clears again) on exit.
class ScopedEnable {
 public:
  ScopedEnable() : previous_(set_enabled(true)) { reset(); }
  ~ScopedEnable() {
    reset();
    set_enabled(previous_);
  }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace hyperrec::lock_order
