// Clang thread-safety annotations and the annotated locking primitives
// every hyperrec subsystem uses.
//
// The macros expand to Clang's capability attributes under Clang (where the
// CI `clang-thread-safety` job builds with -Werror=thread-safety) and to
// nothing elsewhere, so GCC builds are unaffected.  Conventions for new
// code:
//
//   * declare locks as `hyperrec::Mutex` (never raw std::mutex — enforced
//     by tools/lint.py rule `raw-mutex`), giving each a lock-class name;
//     sharded locks of one class share one name (see lock_order.hpp).
//   * every field written under a lock is declared `GUARDED_BY(mutex_)`.
//   * helpers that expect the caller to hold a lock are `REQUIRES(mutex_)`.
//   * scope-based acquisition uses `MutexLock` (or Writer/ReaderMutexLock
//     for SharedMutex); condition waits use `CondVar::wait(mutex)` inside
//     an explicit `while (!predicate)` loop — Clang's analysis does not
//     propagate REQUIRES into predicate lambdas.
//
// The wrappers also feed the lockdep-lite validator: every blocking
// acquisition is reported to lock_order BEFORE the underlying lock call,
// so order inversions fail deterministically instead of deadlocking.
//
// This file and lock_order.{hpp,cpp} are the deliberate holders of raw
// standard-library lock types in the library.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "support/lock_order.hpp"

#if defined(__clang__)
#define HYPERREC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HYPERREC_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) HYPERREC_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY HYPERREC_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) HYPERREC_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) HYPERREC_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  HYPERREC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HYPERREC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  HYPERREC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HYPERREC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  HYPERREC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HYPERREC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  HYPERREC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HYPERREC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  HYPERREC_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  HYPERREC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HYPERREC_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) HYPERREC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) HYPERREC_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) HYPERREC_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  HYPERREC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hyperrec {

/// An annotated, lock-order-validated mutual-exclusion lock.  The name is
/// the lock CLASS for ordering purposes: give sharded locks of one family
/// the same name, distinct families distinct names.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name) noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    lock_order::on_acquire(this, name_);
    inner_.lock();
  }

  void unlock() RELEASE() {
    inner_.unlock();
    lock_order::on_release(this);
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!inner_.try_lock()) return false;
    lock_order::on_acquire_try(this, name_);
    return true;
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  std::mutex inner_;
  const char* name_;
};

/// RAII scope lock over Mutex (std::lock_guard equivalent — the raw guard
/// is banned outside this header by lint rule `raw-mutex`).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex.  wait() requires the caller to
/// hold the mutex and is annotated so; use an explicit while-loop around
/// it rather than the predicate overload (see the header comment).
///
/// The lock-order validator deliberately keeps the mutex in the caller's
/// held set across the wait: the post-wakeup re-acquisition re-takes the
/// lock in the same class order the caller already established, so no new
/// ordering information exists to record.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.inner_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.inner_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.inner_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated reader/writer lock (std::shared_mutex wrapper).  Shared
/// acquisitions participate in lock-order validation like exclusive ones:
/// they can block behind a writer, so they can close a deadlock cycle.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name) noexcept : name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_order::on_acquire(this, name_);
    inner_.lock();
  }

  void unlock() RELEASE() {
    inner_.unlock();
    lock_order::on_release(this);
  }

  void lock_shared() ACQUIRE_SHARED() {
    lock_order::on_acquire(this, name_);
    inner_.lock_shared();
  }

  void unlock_shared() RELEASE_SHARED() {
    inner_.unlock_shared();
    lock_order::on_release(this);
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex inner_;
  const char* name_;
};

/// RAII exclusive scope over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterMutexLock() RELEASE() { mutex_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared scope over SharedMutex.  The destructor is RELEASE_GENERIC:
/// Clang models a scoped capability's release generically when the scope
/// was acquired shared, and the generic form accepts either mode.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mutex_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace hyperrec
