#include "support/bitset_kernels.hpp"

#include <cstdlib>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define HYPERREC_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace hyperrec::kernels {

namespace {

// --- portable scalar flavour ----------------------------------------------
// The oracle every SIMD flavour must match bit-for-bit.  Plain loops: the
// compiler may autovectorise them against the build's baseline ISA, which
// is fine — semantics, not schedule, are the contract.

void scalar_or(Word* dst, const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void scalar_and(Word* dst, const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

void scalar_andnot(Word* dst, const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

void scalar_xor(Word* dst, const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
}

std::size_t scalar_popcount(const Word* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i]);
  return total;
}

std::size_t scalar_or_popcount(const Word* a, const Word* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i] | b[i]);
  return total;
}

std::size_t scalar_or3_popcount(const Word* a, const Word* b, const Word* c,
                                std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += popcount_word(a[i] | b[i] | c[i]);
  }
  return total;
}

std::size_t scalar_xor_popcount(const Word* a, const Word* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i] ^ b[i]);
  return total;
}

std::size_t scalar_andnot_popcount(const Word* a, const Word* b,
                                   std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += popcount_word(a[i] & ~b[i]);
  return total;
}

bool scalar_subset(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

bool scalar_intersects(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

std::size_t scalar_or_merge_count(Word* dst, const Word* src, std::size_t n) {
  std::size_t added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    added += popcount_word(src[i] & ~dst[i]);
    dst[i] |= src[i];
  }
  return added;
}

constexpr KernelTable kScalarTable = {
    "scalar",          scalar_or,           scalar_and,
    scalar_andnot,     scalar_xor,          scalar_popcount,
    scalar_or_popcount, scalar_or3_popcount, scalar_xor_popcount,
    scalar_andnot_popcount, scalar_subset,  scalar_intersects,
    scalar_or_merge_count,
};

#if defined(HYPERREC_KERNELS_X86)

// --- AVX2 flavour ---------------------------------------------------------
// 4 words per vector; popcounts via the Muła pshufb nibble-LUT reduced with
// psadbw.  Every function carries the target attribute so the TU itself can
// be compiled for the portable baseline and still emit AVX2 bodies that are
// only ever reached behind the cpuid dispatch.

__attribute__((target("avx2"))) inline __m256i popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  // Horizontal byte sums into the 4 qword lanes.
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::size_t reduce256(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

__attribute__((target("avx2"))) inline __m256i load256(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

__attribute__((target("avx2"))) void avx2_or(Word* dst, const Word* a,
                                             const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

__attribute__((target("avx2"))) void avx2_and(Word* dst, const Word* a,
                                              const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

__attribute__((target("avx2"))) void avx2_andnot(Word* dst, const Word* a,
                                                 const Word* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // _mm256_andnot_si256(x, y) computes ~x & y, so pass b first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(load256(b + i), load256(a + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

__attribute__((target("avx2"))) void avx2_xor(Word* dst, const Word* a,
                                              const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] ^ b[i];
}

__attribute__((target("avx2"))) std::size_t avx2_popcount(const Word* a,
                                                          std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, popcount256(load256(a + i)));
  }
  std::size_t total = reduce256(acc);
  for (; i < n; ++i) total += popcount_word(a[i]);
  return total;
}

__attribute__((target("avx2"))) std::size_t avx2_or_popcount(const Word* a,
                                                             const Word* b,
                                                             std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_or_si256(load256(a + i), load256(b + i))));
  }
  std::size_t total = reduce256(acc);
  for (; i < n; ++i) total += popcount_word(a[i] | b[i]);
  return total;
}

__attribute__((target("avx2"))) std::size_t avx2_or3_popcount(const Word* a,
                                                              const Word* b,
                                                              const Word* c,
                                                              std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_or_si256(
        _mm256_or_si256(load256(a + i), load256(b + i)), load256(c + i));
    acc = _mm256_add_epi64(acc, popcount256(v));
  }
  std::size_t total = reduce256(acc);
  for (; i < n; ++i) total += popcount_word(a[i] | b[i] | c[i]);
  return total;
}

__attribute__((target("avx2"))) std::size_t avx2_xor_popcount(const Word* a,
                                                              const Word* b,
                                                              std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_xor_si256(load256(a + i), load256(b + i))));
  }
  std::size_t total = reduce256(acc);
  for (; i < n; ++i) total += popcount_word(a[i] ^ b[i]);
  return total;
}

__attribute__((target("avx2"))) std::size_t avx2_andnot_popcount(
    const Word* a, const Word* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_andnot_si256(load256(b + i), load256(a + i))));
  }
  std::size_t total = reduce256(acc);
  for (; i < n; ++i) total += popcount_word(a[i] & ~b[i]);
  return total;
}

__attribute__((target("avx2"))) bool avx2_subset(const Word* a, const Word* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i diff = _mm256_andnot_si256(load256(b + i), load256(a + i));
    if (!_mm256_testz_si256(diff, diff)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool avx2_intersects(const Word* a,
                                                     const Word* b,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (!_mm256_testz_si256(load256(a + i), load256(b + i))) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

__attribute__((target("avx2"))) std::size_t avx2_or_merge_count(
    Word* dst, const Word* src, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd = load256(dst + i);
    const __m256i vs = load256(src + i);
    acc = _mm256_add_epi64(acc, popcount256(_mm256_andnot_si256(vd, vs)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, vs));
  }
  std::size_t added = reduce256(acc);
  for (; i < n; ++i) {
    added += popcount_word(src[i] & ~dst[i]);
    dst[i] |= src[i];
  }
  return added;
}

constexpr KernelTable kAvx2Table = {
    "avx2",           avx2_or,           avx2_and,
    avx2_andnot,      avx2_xor,          avx2_popcount,
    avx2_or_popcount, avx2_or3_popcount, avx2_xor_popcount,
    avx2_andnot_popcount, avx2_subset,   avx2_intersects,
    avx2_or_merge_count,
};

// --- AVX-512 flavour ------------------------------------------------------
// 8 words per vector with the native VPOPCNTQ instruction; the per-vector
// shuffle dance disappears entirely.  Gated at dispatch on F+BW+VPOPCNTDQ.

#define HYPERREC_AVX512_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512vpopcntdq")))

HYPERREC_AVX512_TARGET void avx512_or(Word* dst, const Word* a, const Word* b,
                                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_or_si512(_mm512_loadu_si512(a + i),
                                                 _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

HYPERREC_AVX512_TARGET void avx512_and(Word* dst, const Word* a, const Word* b,
                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_and_si512(_mm512_loadu_si512(a + i),
                                                  _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

HYPERREC_AVX512_TARGET void avx512_andnot(Word* dst, const Word* a,
                                          const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_andnot_si512(_mm512_loadu_si512(b + i),
                                            _mm512_loadu_si512(a + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

HYPERREC_AVX512_TARGET void avx512_xor(Word* dst, const Word* a, const Word* b,
                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                                  _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] ^ b[i];
}

HYPERREC_AVX512_TARGET std::size_t avx512_popcount(const Word* a,
                                                   std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += popcount_word(a[i]);
  return total;
}

HYPERREC_AVX512_TARGET std::size_t avx512_or_popcount(const Word* a,
                                                      const Word* b,
                                                      std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_or_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += popcount_word(a[i] | b[i]);
  return total;
}

HYPERREC_AVX512_TARGET std::size_t avx512_or3_popcount(const Word* a,
                                                       const Word* b,
                                                       const Word* c,
                                                       std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_or_si512(
        _mm512_or_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i)),
        _mm512_loadu_si512(c + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += popcount_word(a[i] | b[i] | c[i]);
  return total;
}

HYPERREC_AVX512_TARGET std::size_t avx512_xor_popcount(const Word* a,
                                                       const Word* b,
                                                       std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_xor_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += popcount_word(a[i] ^ b[i]);
  return total;
}

HYPERREC_AVX512_TARGET std::size_t avx512_andnot_popcount(const Word* a,
                                                          const Word* b,
                                                          std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_andnot_si512(_mm512_loadu_si512(b + i),
                                          _mm512_loadu_si512(a + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += popcount_word(a[i] & ~b[i]);
  return total;
}

HYPERREC_AVX512_TARGET bool avx512_subset(const Word* a, const Word* b,
                                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i diff = _mm512_andnot_si512(_mm512_loadu_si512(b + i),
                                             _mm512_loadu_si512(a + i));
    if (_mm512_test_epi64_mask(diff, diff) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

HYPERREC_AVX512_TARGET bool avx512_intersects(const Word* a, const Word* b,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (_mm512_test_epi64_mask(_mm512_loadu_si512(a + i),
                               _mm512_loadu_si512(b + i)) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

HYPERREC_AVX512_TARGET std::size_t avx512_or_merge_count(Word* dst,
                                                         const Word* src,
                                                         std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = _mm512_loadu_si512(dst + i);
    const __m512i vs = _mm512_loadu_si512(src + i);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_andnot_si512(vd, vs)));
    _mm512_storeu_si512(dst + i, _mm512_or_si512(vd, vs));
  }
  std::size_t added = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    added += popcount_word(src[i] & ~dst[i]);
    dst[i] |= src[i];
  }
  return added;
}

#undef HYPERREC_AVX512_TARGET

constexpr KernelTable kAvx512Table = {
    "avx512",           avx512_or,           avx512_and,
    avx512_andnot,      avx512_xor,          avx512_popcount,
    avx512_or_popcount, avx512_or3_popcount, avx512_xor_popcount,
    avx512_andnot_popcount, avx512_subset,   avx512_intersects,
    avx512_or_merge_count,
};

#endif  // HYPERREC_KERNELS_X86

// --- dispatch -------------------------------------------------------------

bool env_force_scalar() {
  const char* value = std::getenv("HYPERREC_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

const KernelTable* detect_simd() {
#if defined(HYPERREC_KERNELS_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return &kAvx512Table;
  }
  if (__builtin_cpu_supports("avx2")) return &kAvx2Table;
#endif
  return nullptr;
}

struct Dispatch {
  const KernelTable* simd;
  const KernelTable* active;
  bool forced;
};

const Dispatch& dispatch() {
  // Selected exactly once, on first kernel use past the inline threshold
  // (thread-safe static init); env/cpuid never change mid-process.
  static const Dispatch selected = [] {
    Dispatch d{detect_simd(), nullptr, env_force_scalar()};
    d.active = (d.forced || d.simd == nullptr) ? &kScalarTable : d.simd;
    return d;
  }();
  return selected;
}

}  // namespace

const KernelTable& scalar_table() noexcept { return kScalarTable; }

const KernelTable* simd_table() noexcept { return dispatch().simd; }

const KernelTable& active_table() noexcept { return *dispatch().active; }

const char* active_isa() noexcept { return dispatch().active->name; }

bool force_scalar_requested() noexcept { return dispatch().forced; }

}  // namespace hyperrec::kernels
