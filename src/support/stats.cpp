#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hyperrec {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

Summary summarize(const std::vector<std::int64_t>& samples) {
  std::vector<double> d(samples.begin(), samples.end());
  return summarize(d);
}

std::vector<std::size_t> run_lengths(const std::vector<std::int64_t>& values) {
  std::vector<std::size_t> runs;
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    runs.push_back(j - i);
    i = j;
  }
  return runs;
}

}  // namespace hyperrec
