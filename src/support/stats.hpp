// Small descriptive-statistics helpers used by benches and workload
// diagnostics (mean/stddev of cost samples, run-length summaries of traces).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperrec {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Computes a Summary over the samples; empty input yields all-zero summary.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Integer-sample overload (costs are exact integers in the switch model).
[[nodiscard]] Summary summarize(const std::vector<std::int64_t>& samples);

/// Lengths of maximal runs of equal consecutive values; used to analyse how
/// "phased" a context-requirement trace is.
[[nodiscard]] std::vector<std::size_t> run_lengths(
    const std::vector<std::int64_t>& values);

}  // namespace hyperrec
