#include "support/bitset.hpp"

#include <bit>

namespace hyperrec {

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (const Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

DynamicBitset& DynamicBitset::set_range(std::size_t first, std::size_t last) {
  HYPERREC_ENSURE(first <= last && last <= size_, "bit range out of bounds");
  if (first == last) return *this;
  const std::size_t first_word = first / kWordBits;
  const std::size_t last_word = (last - 1) / kWordBits;
  const Word first_mask = ~Word{0} << (first % kWordBits);
  const std::size_t last_rem = last % kWordBits;
  const Word last_mask =
      last_rem == 0 ? ~Word{0} : ~Word{0} >> (kWordBits - last_rem);
  if (first_word == last_word) {
    words_[first_word] |= first_mask & last_mask;
    return *this;
  }
  words_[first_word] |= first_mask;
  for (std::size_t w = first_word + 1; w < last_word; ++w) words_[w] = ~Word{0};
  words_[last_word] |= last_mask;
  return *this;
}

DynamicBitset& DynamicBitset::reset_all() noexcept {
  for (Word& w : words_) w = 0;
  return *this;
}

bool DynamicBitset::any() const noexcept {
  for (const Word w : words_)
    if (w != 0) return true;
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynamicBitset::subset_of(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

std::size_t DynamicBitset::union_count(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(words_[i] | other.words_[i]));
  return total;
}

std::size_t DynamicBitset::symmetric_difference_count(
    const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  return total;
}

std::size_t DynamicBitset::merge_counting(const DynamicBitset& other) {
  check_same_size(other);
  std::size_t added = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const Word gained = other.words_[i] & ~words_[i];
    added += static_cast<std::size_t>(std::popcount(gained));
    words_[i] |= other.words_[i];
  }
  return added;
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::string DynamicBitset::to_string() const {
  std::string out(size_, '0');
  for_each_set([&out](std::size_t pos) { out[pos] = '1'; });
  return out;
}

DynamicBitset DynamicBitset::from_string(const std::string& bits) {
  DynamicBitset result(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    HYPERREC_ENSURE(bits[i] == '0' || bits[i] == '1',
                    "bitset string must contain only '0' and '1'");
    if (bits[i] == '1') result.set(i);
  }
  return result;
}

DynamicBitset DynamicBitset::from_or_words(std::size_t size, const Word* a,
                                           const Word* b, std::size_t words) {
  DynamicBitset result(size);
  HYPERREC_ENSURE(words == result.words_.size(),
                  "word count does not match the universe size");
  for (std::size_t w = 0; w < words; ++w) {
    result.words_[w] = a[w] | b[w];
  }
  result.clear_tail();
  return result;
}

std::size_t DynamicBitset::hash() const noexcept {
  std::size_t h = 1469598103934665603ull;
  for (const Word w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  h ^= size_;
  return h;
}

void DynamicBitset::clear_tail() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

}  // namespace hyperrec
