#include "support/bitset.hpp"

#include <algorithm>
#include <bit>

namespace hyperrec {

DynamicBitset& DynamicBitset::set_range(std::size_t first, std::size_t last) {
  HYPERREC_ENSURE(first <= last && last <= size_, "bit range out of bounds");
  if (first == last) return *this;
  Word* words = data();
  const std::size_t first_word = first / kWordBits;
  const std::size_t last_word = (last - 1) / kWordBits;
  const Word first_mask = ~Word{0} << (first % kWordBits);
  const std::size_t last_rem = last % kWordBits;
  const Word last_mask =
      last_rem == 0 ? ~Word{0} : ~Word{0} >> (kWordBits - last_rem);
  if (first_word == last_word) {
    words[first_word] |= first_mask & last_mask;
    return *this;
  }
  words[first_word] |= first_mask;
  for (std::size_t w = first_word + 1; w < last_word; ++w) words[w] = ~Word{0};
  words[last_word] |= last_mask;
  return *this;
}

DynamicBitset& DynamicBitset::reset_all() noexcept {
  Word* words = data();
  for (std::size_t i = 0; i < nwords_; ++i) words[i] = 0;
  return *this;
}

bool DynamicBitset::any() const noexcept {
  const Word* words = data();
  for (std::size_t i = 0; i < nwords_; ++i) {
    if (words[i] != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::find_first() const noexcept {
  const Word* words = data();
  for (std::size_t w = 0; w < nwords_; ++w) {
    if (words[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words[w]));
    }
  }
  return size_;
}

std::string DynamicBitset::to_string() const {
  // Word-at-a-time: only set bits are written, with no per-bit bounds
  // checks — the tail-bits-zero invariant guarantees every position fits.
  std::string out(size_, '0');
  const Word* words = data();
  for (std::size_t w = 0; w < nwords_; ++w) {
    Word word = words[w];
    char* chunk = out.data() + w * kWordBits;
    while (word != 0) {
      chunk[std::countr_zero(word)] = '1';
      word &= word - 1;
    }
  }
  return out;
}

DynamicBitset DynamicBitset::from_string(const std::string& bits) {
  // One validation pass up front, then branch-free word assembly — this
  // runs inside trace-io and fuzz-failure diagnostics where the old
  // per-bit set() (a bounds ENSURE per character) dominated.
  HYPERREC_ENSURE(bits.find_first_not_of("01") == std::string::npos,
                  "bitset string must contain only '0' and '1'");
  DynamicBitset result(bits.size());
  Word* words = result.data();
  for (std::size_t w = 0; w < result.nwords_; ++w) {
    const std::size_t base = w * kWordBits;
    const std::size_t limit = std::min(kWordBits, bits.size() - base);
    Word word = 0;
    for (std::size_t i = 0; i < limit; ++i) {
      word |= static_cast<Word>(bits[base + i] - '0') << i;
    }
    words[w] = word;
  }
  return result;
}

DynamicBitset DynamicBitset::from_or_words(std::size_t size, const Word* a,
                                           const Word* b, std::size_t words) {
  DynamicBitset result(size);
  HYPERREC_ENSURE(words == result.nwords_,
                  "word count does not match the universe size");
  kernels::or_words(result.data(), a, b, words);
  result.clear_tail();
  return result;
}

std::size_t DynamicBitset::hash() const noexcept {
  std::size_t h = 1469598103934665603ull;
  const Word* words = data();
  for (std::size_t i = 0; i < nwords_; ++i) {
    h ^= static_cast<std::size_t>(words[i]);
    h *= 1099511628211ull;
  }
  h ^= size_;
  return h;
}

void DynamicBitset::clear_tail() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && nwords_ != 0) {
    data()[nwords_ - 1] &= (Word{1} << rem) - 1;
  }
}

}  // namespace hyperrec
