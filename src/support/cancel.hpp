// Cooperative cancellation with optional deadlines.
//
// A CancelToken is a cheap, copyable handle that long-running solvers poll
// between iterations: when it reports cancelled() they stop early and return
// their current incumbent instead of throwing.  Tokens come in four
// flavours:
//
//   * default-constructed — inert: never cancels, checks are a null test;
//   * manual()            — cancelled explicitly via cancel();
//   * with_deadline()/after() — cancels once a steady-clock deadline passes;
//   * linked(parent, …)   — cancels when the parent does *or* on its own
//                           flag/deadline (used per job under an engine-wide
//                           token).
//
// Copies share state, so a token handed to N racing solvers cancels them
// all at once.  cancelled() is lock-free and safe to call from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "support/ensure.hpp"

namespace hyperrec {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: cancellable() is false and cancelled() is always false.
  CancelToken() = default;

  /// Token that cancels only via cancel().
  [[nodiscard]] static CancelToken manual() {
    return CancelToken(std::make_shared<State>());
  }

  /// Token that cancels once `deadline` passes (or via cancel()).
  [[nodiscard]] static CancelToken with_deadline(Clock::time_point deadline) {
    auto state = std::make_shared<State>();
    state->has_deadline = true;
    state->deadline = deadline;
    return CancelToken(std::move(state));
  }

  /// Token that cancels `budget` from now (or via cancel()).
  [[nodiscard]] static CancelToken after(std::chrono::nanoseconds budget) {
    return with_deadline(Clock::now() + budget);
  }

  /// Token that is already cancelled (for deadline-contract tests and
  /// "evaluate the incumbent only" runs).
  [[nodiscard]] static CancelToken expired() {
    auto state = std::make_shared<State>();
    state->flag.store(true, std::memory_order_relaxed);
    return CancelToken(std::move(state));
  }

  /// Token that cancels when `parent` does, on its own cancel(), or once
  /// `deadline` passes — whichever comes first.  An inert parent only
  /// contributes nothing.
  [[nodiscard]] static CancelToken linked(const CancelToken& parent,
                                          Clock::time_point deadline) {
    auto state = std::make_shared<State>();
    state->has_deadline = true;
    state->deadline = deadline;
    state->parent = parent.state_;
    return CancelToken(std::move(state));
  }

  /// Linked token without a deadline of its own.
  [[nodiscard]] static CancelToken linked(const CancelToken& parent) {
    auto state = std::make_shared<State>();
    state->parent = parent.state_;
    return CancelToken(std::move(state));
  }

  /// True when this token can ever report cancelled().
  [[nodiscard]] bool cancellable() const noexcept {
    return state_ != nullptr;
  }

  /// Requests cancellation; all copies observe it.  Inert tokens cannot be
  /// cancelled — constructing one via manual()/after() is the caller's
  /// statement of intent.
  void cancel() const {
    HYPERREC_ENSURE(state_ != nullptr, "cancel() on an inert CancelToken");
    state_->flag.store(true, std::memory_order_release);
  }

  /// True once cancel() was called, the deadline passed, or a linked parent
  /// cancelled.  Lock-free; the deadline latches on first observation.
  [[nodiscard]] bool cancelled() const noexcept {
    const State* state = state_.get();
    if (state == nullptr) return false;
    if (state->flag.load(std::memory_order_acquire)) return true;
    if (state->has_deadline && Clock::now() >= state->deadline) {
      state->flag.store(true, std::memory_order_release);
      return true;
    }
    const State* parent = state->parent.get();
    while (parent != nullptr) {
      if (parent->flag.load(std::memory_order_acquire) ||
          (parent->has_deadline && Clock::now() >= parent->deadline)) {
        state->flag.store(true, std::memory_order_release);
        return true;
      }
      parent = parent->parent.get();
    }
    return false;
  }

 private:
  struct State {
    mutable std::atomic<bool> flag{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::shared_ptr<const State> parent;
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace hyperrec
